package exec

import (
	"fmt"

	"metarouting/internal/bsg"
	"metarouting/internal/compile"
	"metarouting/internal/value"
)

// Semiring is the execution interface for bisemigroup routing (the
// algebraic-path Closure solver): interned weights with ⊕/⊗ as index
// operations. Like Algebra, the compiled backend is pure lookups and the
// dynamic backend hash-conses, so index equality is value equality on
// both.
type Semiring interface {
	// Name labels the underlying bisemigroup.
	Name() string
	// Mode reports the backend kind.
	Mode() Mode
	// Intern and Value convert between carrier elements and indices.
	Intern(v value.V) (int32, error)
	Value(w int32) value.V
	// Add is ⊕ (summarization), Mul is ⊗ (computation).
	Add(a, b int32) int32
	Mul(a, b int32) int32
}

type dynamicSemiring struct {
	b     *bsg.Bisemigroup
	elems []value.V
	index map[value.V]int32
}

// NewDynamicSemiring builds the interpreting backend over a bisemigroup.
func NewDynamicSemiring(b *bsg.Bisemigroup) Semiring {
	return &dynamicSemiring{b: b, index: make(map[value.V]int32, 16)}
}

func (d *dynamicSemiring) Name() string { return d.b.Name }
func (d *dynamicSemiring) Mode() Mode   { return ModeDynamic }

func (d *dynamicSemiring) intern(v value.V) int32 {
	if w, ok := d.index[v]; ok {
		return w
	}
	w := int32(len(d.elems))
	d.elems = append(d.elems, v)
	d.index[v] = w
	return w
}

func (d *dynamicSemiring) Intern(v value.V) (int32, error) { return d.intern(v), nil }
func (d *dynamicSemiring) Value(w int32) value.V           { return d.elems[w] }

func (d *dynamicSemiring) Add(a, b int32) int32 {
	return d.intern(d.b.Add.Op(d.elems[a], d.elems[b]))
}

func (d *dynamicSemiring) Mul(a, b int32) int32 {
	return d.intern(d.b.Mul.Op(d.elems[a], d.elems[b]))
}

type tabledSemiring struct {
	b *bsg.Bisemigroup
	c *compile.CompiledBisemigroup
}

// CompileSemiring builds the dense-table backend; it fails when the
// bisemigroup is infinite, too large, or not closed under its ops.
func CompileSemiring(b *bsg.Bisemigroup) (Semiring, error) {
	c, err := compile.NewBisemigroup(b)
	if err != nil {
		return nil, err
	}
	return &tabledSemiring{b: b, c: c}, nil
}

func (e *tabledSemiring) Name() string { return e.b.Name }
func (e *tabledSemiring) Mode() Mode   { return ModeCompiled }

func (e *tabledSemiring) Intern(v value.V) (int32, error) {
	if w, ok := e.c.Index[v]; ok {
		return int32(w), nil
	}
	return 0, fmt.Errorf("exec: %s is not in the compiled carrier of %s",
		value.Format(v), e.b.Name)
}

func (e *tabledSemiring) Value(w int32) value.V { return e.c.Elems[w] }
func (e *tabledSemiring) Add(a, b int32) int32  { return e.c.Add(a, b) }
func (e *tabledSemiring) Mul(a, b int32) int32  { return e.c.Mul(a, b) }

// ForSemiring picks the backend for b under the default mode: compiled
// when finite, closed, within the bisemigroup cap and every weight in
// weights interns; dynamic otherwise. Unlike order transforms, compiled
// bisemigroups are not memoised — Closure is an all-pairs solver, so one
// build already amortizes over N² matrix cells.
func ForSemiring(b *bsg.Bisemigroup, weights ...value.V) Semiring {
	if defaultMode != ModeDynamic && b.Finite() &&
		b.Carrier().Size() <= compile.MaxBisemigroupCarrier {
		if eng, err := CompileSemiring(b); err == nil {
			for _, w := range weights {
				if _, err := eng.Intern(w); err != nil {
					return NewDynamicSemiring(b)
				}
			}
			return eng
		}
	}
	return NewDynamicSemiring(b)
}
