// Package order implements preorders — the "ordered" approach to weight
// summarization in the quadrants model (§II–§III of the paper).
//
// A preorder is represented extensionally as a carrier plus a ≲ predicate.
// The derived relations <, ~ and # of §II are methods; the lexicographic
// product of §II is the Lex constructor. Property checking (reflexivity,
// transitivity, fullness, antisymmetry, top/bottom) is exhaustive on
// finite carriers and sampled on infinite ones.
package order

import (
	"fmt"
	"math/rand"

	"metarouting/internal/prop"
	"metarouting/internal/value"
)

// Preorder is a preordered set (S, ≲). Leq must be reflexive and
// transitive for the structure to be a genuine preorder; the library does
// not enforce this at construction time (the paper's design principle is
// to *infer* rather than require) but CheckAll will report violations.
type Preorder struct {
	// Name is a diagnostic label, e.g. "(ℕ,≤)".
	Name string
	// Car is the carrier.
	Car *value.Carrier
	// Leq is the ≲ relation.
	Leq func(a, b value.V) bool
	// Props caches property judgements about the order.
	Props prop.Set

	// top/bot, when set, declare distinguished elements for infinite
	// carriers (finite carriers have them computed on demand).
	top, bot       value.V
	hasTop, hasBot bool
}

// New builds a preorder from a carrier and a ≲ predicate.
func New(name string, car *value.Carrier, leq func(a, b value.V) bool) *Preorder {
	return &Preorder{Name: name, Car: car, Leq: leq, Props: prop.Make()}
}

// WithTop declares t as the ⊤ (least preferred) element and returns the
// preorder, for use with infinite carriers where ⊤ cannot be discovered by
// enumeration.
func (p *Preorder) WithTop(t value.V) *Preorder {
	p.top, p.hasTop = t, true
	p.Props.Declare(prop.HasTop)
	return p
}

// WithBot declares b as the ⊥ (most preferred) element.
func (p *Preorder) WithBot(b value.V) *Preorder {
	p.bot, p.hasBot = b, true
	p.Props.Declare(prop.HasBot)
	return p
}

// Lt is the strict relation: a < b ⟺ a ≲ b ∧ ¬(b ≲ a).
func (p *Preorder) Lt(a, b value.V) bool { return p.Leq(a, b) && !p.Leq(b, a) }

// Equiv is the equivalence relation: a ~ b ⟺ a ≲ b ∧ b ≲ a.
func (p *Preorder) Equiv(a, b value.V) bool { return p.Leq(a, b) && p.Leq(b, a) }

// Incomp is the incomparability relation: a # b ⟺ ¬(a ≲ b) ∧ ¬(b ≲ a).
func (p *Preorder) Incomp(a, b value.V) bool { return !p.Leq(a, b) && !p.Leq(b, a) }

// Top returns the declared or discovered ⊤ element: x ≲ ⊤ for every x.
// Discovery requires a finite carrier; the result is memoised.
func (p *Preorder) Top() (value.V, bool) {
	if p.hasTop {
		return p.top, true
	}
	if p.Props.Fails(prop.HasTop) || !p.Car.Finite() {
		return nil, false
	}
	for _, cand := range p.Car.Elems {
		ok := true
		for _, x := range p.Car.Elems {
			if !p.Leq(x, cand) {
				ok = false
				break
			}
		}
		if ok {
			p.top, p.hasTop = cand, true
			p.Props.Derive(prop.HasTop, prop.True, "enumerated")
			return cand, true
		}
	}
	p.Props.Derive(prop.HasTop, prop.False, "enumerated")
	return nil, false
}

// Bot returns the declared or discovered ⊥ element: ⊥ ≲ x for every x.
func (p *Preorder) Bot() (value.V, bool) {
	if p.hasBot {
		return p.bot, true
	}
	if p.Props.Fails(prop.HasBot) || !p.Car.Finite() {
		return nil, false
	}
	for _, cand := range p.Car.Elems {
		ok := true
		for _, x := range p.Car.Elems {
			if !p.Leq(cand, x) {
				ok = false
				break
			}
		}
		if ok {
			p.bot, p.hasBot = cand, true
			p.Props.Derive(prop.HasBot, prop.True, "enumerated")
			return cand, true
		}
	}
	p.Props.Derive(prop.HasBot, prop.False, "enumerated")
	return nil, false
}

// IsTop reports whether v is a/the top element (v ~ ⊤ suffices: the I
// property of Fig 3 exempts any element equivalent to ⊤).
func (p *Preorder) IsTop(v value.V) bool {
	t, ok := p.Top()
	if !ok {
		return false
	}
	return v == t || p.Equiv(v, t)
}

// MinSet returns min≲(A): the elements of A not strictly dominated by any
// other element of A. Duplicates (by ==) are removed; order of first
// appearance is preserved. This is the summarization step of the ordered
// quadrants and the basis of the min-set map between quadrants.
func (p *Preorder) MinSet(a []value.V) []value.V {
	var out []value.V
	for i, x := range a {
		dominated := false
		for j, y := range a {
			if i == j {
				continue
			}
			if p.Lt(y, x) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		dup := false
		for _, z := range out {
			if z == x {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, x)
		}
	}
	return out
}

// Lex returns the lexicographic product of s and t (§II):
//
//	(s1,t1) ≲ (s2,t2) ⟺ s1 < s2 ∨ (s1 ~ s2 ∧ t1 ≲ t2).
//
// Note the use of ~ rather than = on the left factor: the product respects
// the ordering of equivalent elements of S.
func Lex(s, t *Preorder) *Preorder {
	p := New("("+s.Name+" ×lex "+t.Name+")", value.Product(s.Car, t.Car),
		func(a, b value.V) bool {
			x, y := a.(value.Pair), b.(value.Pair)
			if s.Lt(x.A, y.A) {
				return true
			}
			return s.Equiv(x.A, y.A) && t.Leq(x.B, y.B)
		})
	// ⊤ and ⊥ of the product are the pairs of tops/bottoms when both
	// factors have them.
	if st, ok := s.Top(); ok {
		if tt, ok2 := t.Top(); ok2 {
			p.WithTop(value.Pair{A: st, B: tt})
		}
	}
	if sb, ok := s.Bot(); ok {
		if tb, ok2 := t.Bot(); ok2 {
			p.WithBot(value.Pair{A: sb, B: tb})
		}
	}
	return p
}

// Pointwise returns the componentwise (product) order on pairs:
// (s1,t1) ≲ (s2,t2) ⟺ s1 ≲ s2 ∧ t1 ≲ t2.
func Pointwise(s, t *Preorder) *Preorder {
	return New("("+s.Name+" × "+t.Name+")", value.Product(s.Car, t.Car),
		func(a, b value.V) bool {
			x, y := a.(value.Pair), b.(value.Pair)
			return s.Leq(x.A, y.A) && t.Leq(x.B, y.B)
		})
}

// Dual returns the opposite order ≳.
func Dual(s *Preorder) *Preorder {
	d := New("dual("+s.Name+")", s.Car, func(a, b value.V) bool { return s.Leq(b, a) })
	if t, ok := s.Top(); ok {
		d.WithBot(t)
	}
	if b, ok := s.Bot(); ok {
		d.WithTop(b)
	}
	return d
}

// Discrete returns the discrete order on car: a ≲ b ⟺ a = b.
// Every pair of distinct elements is incomparable.
func Discrete(car *value.Carrier) *Preorder {
	return New("discrete("+car.Name+")", car, func(a, b value.V) bool { return a == b })
}

// Chaotic returns the indiscrete preorder on car: a ≲ b always.
// Every pair of elements is equivalent.
func Chaotic(car *value.Carrier) *Preorder {
	return New("chaotic("+car.Name+")", car, func(a, b value.V) bool { return true })
}

// IntLeq is the usual order on int carriers.
func IntLeq(name string, car *value.Carrier) *Preorder {
	return New(name, car, func(a, b value.V) bool { return a.(int) <= b.(int) })
}

// checkPairs runs pred over element pairs: exhaustively when the carrier is
// finite, over samples samples otherwise. It returns False with a witness
// on the first violation.
func (p *Preorder) checkPairs(r *rand.Rand, samples int,
	pred func(a, b value.V) (bool, string)) (prop.Status, string) {
	if p.Car.Finite() {
		for _, a := range p.Car.Elems {
			for _, b := range p.Car.Elems {
				if ok, w := pred(a, b); !ok {
					return prop.False, w
				}
			}
		}
		return prop.True, ""
	}
	for i := 0; i < samples; i++ {
		a, b := p.Car.Draw(r), p.Car.Draw(r)
		if ok, w := pred(a, b); !ok {
			return prop.False, w
		}
	}
	return prop.Unknown, ""
}

// CheckReflexive verifies x ≲ x.
func (p *Preorder) CheckReflexive(r *rand.Rand, samples int) (prop.Status, string) {
	if p.Car.Finite() {
		for _, a := range p.Car.Elems {
			if !p.Leq(a, a) {
				return prop.False, fmt.Sprintf("¬(%s ≲ %s)", value.Format(a), value.Format(a))
			}
		}
		return prop.True, ""
	}
	for i := 0; i < samples; i++ {
		a := p.Car.Draw(r)
		if !p.Leq(a, a) {
			return prop.False, fmt.Sprintf("¬(%s ≲ %s)", value.Format(a), value.Format(a))
		}
	}
	return prop.Unknown, ""
}

// CheckTransitive verifies x ≲ y ∧ y ≲ z ⇒ x ≲ z.
func (p *Preorder) CheckTransitive(r *rand.Rand, samples int) (prop.Status, string) {
	if p.Car.Finite() {
		for _, a := range p.Car.Elems {
			for _, b := range p.Car.Elems {
				if !p.Leq(a, b) {
					continue
				}
				for _, c := range p.Car.Elems {
					if p.Leq(b, c) && !p.Leq(a, c) {
						return prop.False, fmt.Sprintf("%s ≲ %s ≲ %s but ¬(%s ≲ %s)",
							value.Format(a), value.Format(b), value.Format(c), value.Format(a), value.Format(c))
					}
				}
			}
		}
		return prop.True, ""
	}
	for i := 0; i < samples; i++ {
		a, b, c := p.Car.Draw(r), p.Car.Draw(r), p.Car.Draw(r)
		if p.Leq(a, b) && p.Leq(b, c) && !p.Leq(a, c) {
			return prop.False, fmt.Sprintf("%s ≲ %s ≲ %s but ¬(%s ≲ %s)",
				value.Format(a), value.Format(b), value.Format(c), value.Format(a), value.Format(c))
		}
	}
	return prop.Unknown, ""
}

// CheckAntisymmetric verifies x ≲ y ∧ y ≲ x ⇒ x = y.
func (p *Preorder) CheckAntisymmetric(r *rand.Rand, samples int) (prop.Status, string) {
	return p.checkPairs(r, samples, func(a, b value.V) (bool, string) {
		if p.Leq(a, b) && p.Leq(b, a) && a != b {
			return false, fmt.Sprintf("%s ~ %s but %s ≠ %s",
				value.Format(a), value.Format(b), value.Format(a), value.Format(b))
		}
		return true, ""
	})
}

// CheckFull verifies x ≲ y ∨ y ≲ x (the order is a preference relation).
func (p *Preorder) CheckFull(r *rand.Rand, samples int) (prop.Status, string) {
	return p.checkPairs(r, samples, func(a, b value.V) (bool, string) {
		if !p.Leq(a, b) && !p.Leq(b, a) {
			return false, fmt.Sprintf("%s # %s", value.Format(a), value.Format(b))
		}
		return true, ""
	})
}

// CheckAll populates Props with judgements for the order-level properties.
// samples bounds the work on infinite carriers.
func (p *Preorder) CheckAll(r *rand.Rand, samples int) {
	record := func(id prop.ID, st prop.Status, w string) {
		rule := "model-check"
		if st == prop.Unknown {
			rule = "sampled"
		}
		p.Props.Put(id, prop.Judgement{Status: st, Rule: rule, Witness: w})
	}
	st, w := p.CheckReflexive(r, samples)
	record(prop.Reflexive, st, w)
	st, w = p.CheckTransitive(r, samples)
	record(prop.Transitive, st, w)
	st, w = p.CheckAntisymmetric(r, samples)
	record(prop.Antisymmetric, st, w)
	st, w = p.CheckFull(r, samples)
	record(prop.Full, st, w)
	if p.Car.Finite() {
		_, hasTop := p.Top()
		_ = hasTop
		_, _ = p.Bot()
	}
}
