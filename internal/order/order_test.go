package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"metarouting/internal/prop"
	"metarouting/internal/value"
)

func leqInt(a, b value.V) bool { return a.(int) <= b.(int) }

func TestDerivedRelations(t *testing.T) {
	p := New("≤", value.Ints(0, 5), leqInt)
	if !p.Lt(1, 2) || p.Lt(2, 2) || p.Lt(3, 2) {
		t.Fatal("Lt wrong on a total order")
	}
	if !p.Equiv(2, 2) || p.Equiv(1, 2) {
		t.Fatal("Equiv wrong on a total order")
	}
	if p.Incomp(1, 2) {
		t.Fatal("total order has no incomparable pairs")
	}
}

func TestDiscreteOrder(t *testing.T) {
	p := Discrete(value.Ints(0, 3))
	if !p.Equiv(1, 1) || p.Leq(1, 2) {
		t.Fatal("discrete order relates only equal elements")
	}
	if !p.Incomp(1, 2) {
		t.Fatal("distinct elements must be incomparable")
	}
	r := rand.New(rand.NewSource(1))
	if st, _ := p.CheckFull(r, 0); st != prop.False {
		t.Fatal("discrete order on ≥2 elements is not full")
	}
	if st, _ := p.CheckAntisymmetric(r, 0); st != prop.True {
		t.Fatal("discrete order is antisymmetric")
	}
}

func TestChaoticOrder(t *testing.T) {
	p := Chaotic(value.Ints(0, 3))
	if !p.Equiv(0, 3) {
		t.Fatal("chaotic order makes everything equivalent")
	}
	r := rand.New(rand.NewSource(1))
	if st, _ := p.CheckFull(r, 0); st != prop.True {
		t.Fatal("chaotic order is full")
	}
	if st, _ := p.CheckAntisymmetric(r, 0); st != prop.False {
		t.Fatal("chaotic order on ≥2 elements is not antisymmetric")
	}
}

func TestTopBotDiscovery(t *testing.T) {
	p := New("≤", value.Ints(0, 4), leqInt)
	top, ok := p.Top()
	if !ok || top != 4 {
		t.Fatalf("Top = %v, %v", top, ok)
	}
	bot, ok := p.Bot()
	if !ok || bot != 0 {
		t.Fatalf("Bot = %v, %v", bot, ok)
	}
	d := Discrete(value.Ints(0, 3))
	if _, ok := d.Top(); ok {
		t.Fatal("discrete order must have no top")
	}
}

func TestIsTopRespectsEquivalence(t *testing.T) {
	// Order with two equivalent maximal elements: a ~ b at the top.
	car := value.Ints(0, 2)
	p := New("weird", car, func(a, b value.V) bool {
		// 0 < {1 ~ 2}
		x, y := a.(int), b.(int)
		if x == 0 {
			return true
		}
		return y != 0
	})
	if _, ok := p.Top(); !ok {
		t.Fatal("expected a top")
	}
	if !p.IsTop(1) || !p.IsTop(2) {
		t.Fatal("both members of the top class must be recognized")
	}
	if p.IsTop(0) {
		t.Fatal("0 is not top")
	}
}

func TestLexOrderDefinition(t *testing.T) {
	s := New("≤", value.Ints(0, 2), leqInt)
	u := Lex(s, Dual(New("≤", value.Ints(0, 2), leqInt)))
	// (0, x) < (1, y) regardless of second components.
	if !u.Lt(value.Pair{A: 0, B: 0}, value.Pair{A: 1, B: 2}) {
		t.Fatal("first component must dominate")
	}
	// Equal first components defer to the second (dual order: bigger preferred).
	if !u.Lt(value.Pair{A: 1, B: 2}, value.Pair{A: 1, B: 0}) {
		t.Fatal("tie must defer to second component under its own order")
	}
	if !u.Equiv(value.Pair{A: 1, B: 1}, value.Pair{A: 1, B: 1}) {
		t.Fatal("reflexivity of lex")
	}
}

func TestLexUsesEquivalenceNotEquality(t *testing.T) {
	// First factor: chaotic on {0,1} — 0 ~ 1 though 0 ≠ 1. The lex
	// product must defer to the second factor for every pair, per §II's
	// "note the use of ~ rather than = on the right hand side".
	s := Chaotic(value.Ints(0, 1))
	u := Lex(s, New("≤", value.Ints(0, 3), leqInt))
	if !u.Lt(value.Pair{A: 0, B: 1}, value.Pair{A: 1, B: 2}) {
		t.Fatal("equivalent (not equal) first components must defer to the second factor")
	}
}

func TestLexPreservesPreorderLaws(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	s := New("≤", value.Ints(0, 2), leqInt)
	d := Discrete(value.Ints(0, 1))
	u := Lex(s, d)
	u.CheckAll(r, 0)
	if !u.Props.Holds(prop.Reflexive) {
		t.Fatal("lex of preorders must be reflexive")
	}
	if !u.Props.Holds(prop.Transitive) {
		t.Fatal("lex of preorders must be transitive")
	}
	// Fullness fails because the second factor is not full.
	if !u.Props.Fails(prop.Full) {
		t.Fatal("lex with a non-full factor is not full")
	}
}

func TestLexTopBot(t *testing.T) {
	s := New("≤", value.Ints(0, 2), leqInt)
	u := Lex(s, New("≤", value.Ints(0, 1), leqInt))
	top, ok := u.Top()
	if !ok || top != (value.Pair{A: 2, B: 1}) {
		t.Fatalf("lex top = %v, %v", top, ok)
	}
	bot, ok := u.Bot()
	if !ok || bot != (value.Pair{A: 0, B: 0}) {
		t.Fatalf("lex bot = %v, %v", bot, ok)
	}
}

func TestPointwiseOrder(t *testing.T) {
	s := New("≤", value.Ints(0, 2), leqInt)
	u := Pointwise(s, s)
	if !u.Leq(value.Pair{A: 0, B: 1}, value.Pair{A: 1, B: 2}) {
		t.Fatal("componentwise ≤ must hold")
	}
	if !u.Incomp(value.Pair{A: 0, B: 2}, value.Pair{A: 1, B: 0}) {
		t.Fatal("crossing pairs must be incomparable")
	}
}

func TestDualSwapsTopBot(t *testing.T) {
	s := New("≤", value.Ints(0, 3), leqInt)
	_, _ = s.Top()
	_, _ = s.Bot()
	d := Dual(s)
	top, ok := d.Top()
	if !ok || top != 0 {
		t.Fatalf("dual top = %v, %v", top, ok)
	}
	if !d.Lt(3, 1) {
		t.Fatal("dual must reverse strictness")
	}
}

func TestMinSet(t *testing.T) {
	s := New("≤", value.Ints(0, 9), leqInt)
	got := s.MinSet([]value.V{5, 3, 7, 3})
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("MinSet = %v", got)
	}
	d := Discrete(value.Ints(0, 9))
	got = d.MinSet([]value.V{5, 3, 7, 3})
	if len(got) != 3 {
		t.Fatalf("discrete MinSet must keep all distinct elements: %v", got)
	}
	if len(s.MinSet(nil)) != 0 {
		t.Fatal("MinSet(∅) must be empty")
	}
}

func TestMinSetAntichainProperty(t *testing.T) {
	// Property: the result of MinSet never contains a strictly dominated
	// element, and is a subset of the input.
	car := value.Ints(0, 7)
	p := New("div", car, func(a, b value.V) bool {
		x, y := a.(int), b.(int)
		if x == 0 || y == 0 {
			return x == y
		}
		return y%x == 0 // divisibility order on 1..7
	})
	f := func(raw []uint8) bool {
		in := make([]value.V, 0, len(raw))
		for _, r := range raw {
			in = append(in, int(r%8))
		}
		out := p.MinSet(in)
		for _, x := range out {
			found := false
			for _, y := range in {
				if x == y {
					found = true
				}
			}
			if !found {
				return false
			}
			for _, y := range out {
				if p.Lt(y, x) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckTransitiveCatchesViolation(t *testing.T) {
	// A deliberately broken relation: 0≲1, 1≲2, but not 0≲2.
	car := value.Ints(0, 2)
	p := New("broken", car, func(a, b value.V) bool {
		x, y := a.(int), b.(int)
		return x == y || (x == 0 && y == 1) || (x == 1 && y == 2)
	})
	st, w := p.CheckTransitive(nil, 0)
	if st != prop.False || w == "" {
		t.Fatalf("expected False with witness, got %v %q", st, w)
	}
}

func TestSampledChecksOnInfiniteCarrier(t *testing.T) {
	car := value.NewSampled("ℕ", func(r *rand.Rand) value.V { return r.Intn(100) })
	p := New("≤", car, leqInt)
	r := rand.New(rand.NewSource(5))
	if st, _ := p.CheckReflexive(r, 200); st != prop.Unknown {
		t.Fatal("sampling a true property must return Unknown, not True")
	}
	broken := New("¬refl", car, func(a, b value.V) bool { return false })
	if st, _ := broken.CheckReflexive(r, 200); st != prop.False {
		t.Fatal("sampling must find reflexivity violations")
	}
}

func TestCheckAllPopulates(t *testing.T) {
	p := New("≤", value.Ints(0, 3), leqInt)
	p.CheckAll(rand.New(rand.NewSource(1)), 0)
	for _, id := range []prop.ID{prop.Reflexive, prop.Transitive, prop.Antisymmetric, prop.Full} {
		if !p.Props.Holds(id) {
			t.Fatalf("expected %s to hold for a total order", id)
		}
	}
}
