package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"metarouting/internal/value"
)

// quickOrder derives a deterministic small preorder from a seed, cycling
// through the main families.
func quickOrder(seed int64, n int) *Preorder {
	r := rand.New(rand.NewSource(seed))
	car := value.Ints(0, n-1)
	switch r.Intn(4) {
	case 0:
		return IntLeq("≤", car)
	case 1:
		return Discrete(car)
	case 2:
		return Chaotic(car)
	default:
		rank := make([]int, n)
		for i := range rank {
			rank[i] = r.Intn(3)
		}
		return New("layer", car, func(a, b value.V) bool {
			x, y := a.(int), b.(int)
			return x == y || rank[x] < rank[y]
		})
	}
}

// Property: <, ~ and # partition every pair (exactly one of a<b, b<a,
// a~b, a#b holds).
func TestQuickTrichotomyPartition(t *testing.T) {
	f := func(seed int64, ai, bi uint8) bool {
		p := quickOrder(seed, 5)
		a, b := int(ai%5), int(bi%5)
		count := 0
		if p.Lt(a, b) {
			count++
		}
		if p.Lt(b, a) {
			count++
		}
		if p.Equiv(a, b) {
			count++
		}
		if p.Incomp(a, b) {
			count++
		}
		return count == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the lexicographic product of preorders is a preorder
// (reflexive and transitive) for every pair of generated factors.
func TestQuickLexIsPreorder(t *testing.T) {
	f := func(s1, s2 int64) bool {
		p := Lex(quickOrder(s1, 3), quickOrder(s2, 3))
		st1, _ := p.CheckReflexive(nil, 0)
		st2, _ := p.CheckTransitive(nil, 0)
		return st1.String() == "true" && st2.String() == "true"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dual is an involution: Dual(Dual(p)) has the same relation.
func TestQuickDualInvolution(t *testing.T) {
	f := func(seed int64, ai, bi uint8) bool {
		p := quickOrder(seed, 5)
		d := Dual(Dual(p))
		a, b := int(ai%5), int(bi%5)
		return p.Leq(a, b) == d.Leq(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: MinSet is idempotent: MinSet(MinSet(A)) = MinSet(A) as sets.
func TestQuickMinSetIdempotent(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		p := quickOrder(seed, 6)
		in := make([]value.V, 0, len(raw))
		for _, x := range raw {
			in = append(in, int(x%6))
		}
		once := p.MinSet(in)
		twice := p.MinSet(once)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: every element of the input is dominated-or-equal by some
// element of MinSet(input) when the order is total (completeness of
// summarization).
func TestQuickMinSetCoversTotalOrders(t *testing.T) {
	f := func(raw []uint8) bool {
		p := IntLeq("≤", value.Ints(0, 7))
		in := make([]value.V, 0, len(raw))
		for _, x := range raw {
			in = append(in, int(x%8))
		}
		min := p.MinSet(in)
		if len(in) == 0 {
			return len(min) == 0
		}
		for _, x := range in {
			covered := false
			for _, m := range min {
				if p.Leq(m, x) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: Lex strictness decomposes: (a1,a2) < (b1,b2) iff a1 < b1 or
// (a1 ~ b1 and a2 < b2).
func TestQuickLexStrictDecomposition(t *testing.T) {
	f := func(s1, s2 int64, a1, a2, b1, b2 uint8) bool {
		p1, p2 := quickOrder(s1, 4), quickOrder(s2, 4)
		l := Lex(p1, p2)
		x := value.Pair{A: int(a1 % 4), B: int(a2 % 4)}
		y := value.Pair{A: int(b1 % 4), B: int(b2 % 4)}
		want := p1.Lt(x.A, y.A) || (p1.Equiv(x.A, y.A) && p2.Lt(x.B, y.B))
		return l.Lt(x, y) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Fatal(err)
	}
}
