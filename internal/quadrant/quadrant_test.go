package quadrant

import (
	"math/rand"
	"testing"

	"metarouting/internal/baselib"
	"metarouting/internal/fn"
	"metarouting/internal/gen"
	"metarouting/internal/ost"
	"metarouting/internal/prop"
	"metarouting/internal/sg"
	"metarouting/internal/value"
)

func TestCayleyPreservesM(t *testing.T) {
	// The Cayley transform of a semiring has homomorphic functions:
	// M(bisemigroup) = distributivity becomes M(transform) = hom.
	b := baselib.MinPlus(5)
	tr := Cayley(b)
	st, w := tr.CheckM(nil, 0)
	if st != prop.True {
		t.Fatalf("Cayley(min-plus) must be homomorphic: %s", w)
	}
	// Cayley of a non-distributive bisemigroup is not.
	min := sg.New("min", value.Ints(0, 3), func(a, b value.V) value.V {
		if a.(int) < b.(int) {
			return a
		}
		return b
	})
	mul := sg.New("×mod4", value.Ints(0, 3), func(a, b value.V) value.V { return a.(int) * b.(int) % 4 })
	tr2 := Cayley(newBSG(min, mul))
	if st, _ := tr2.CheckM(nil, 0); st != prop.False {
		t.Fatal("Cayley of a non-distributive bisemigroup must fail M")
	}
}

func TestCayleyOrderMatchesDirectCheck(t *testing.T) {
	s := baselib.ShortestPathOSG(5)
	tr := CayleyOrder(s)
	st, w := tr.CheckM(nil, 0)
	if st != prop.True {
		t.Fatalf("Cayley((ℕ,≤,+)) must be monotone: %s", w)
	}
	stI, _ := tr.CheckND(nil, 0)
	if stI != prop.True {
		t.Fatal("Cayley((ℕ,≤,+)) must be ND")
	}
}

// TestNaturalOrderTranslations: NOᴸ of min-plus gives the usual ≤;
// checking M in the ordered world matches distributivity in the
// algebraic world for selective ⊕.
func TestNaturalOrderTranslations(t *testing.T) {
	b := baselib.MinPlus(5)
	o := NOL(b)
	if !o.Ord.Leq(2, 4) || o.Ord.Leq(4, 2) {
		t.Fatal("NOᴸ(min) must be ≤")
	}
	st, w := o.CheckM(true, nil, 0)
	if st != prop.True {
		t.Fatalf("NOᴸ(min-plus) must be monotone: %s", w)
	}
	oR := NOR(b)
	if !oR.Ord.Leq(4, 2) || oR.Ord.Leq(2, 4) {
		t.Fatal("NOᴿ(min) must be ≥")
	}
}

// TestNOAgreementRandom: for random selective CI ⊕ and associative ⊗,
// M in the ordered world (via NOᴸ) coincides with left distributivity.
func TestNOAgreementRandom(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	count := 0
	for count < 150 {
		add := gen.CISemigroup(r, 2+r.Intn(3))
		if st, _ := add.CheckSelective(nil, 0); st != prop.True {
			continue
		}
		count++
		mul := gen.AssocOp(r, add.Car.Size())
		b := newBSG(add, mul)
		o := NOL(b)
		algSt, _ := b.CheckM(true, nil, 0)
		ordSt, _ := o.CheckM(true, nil, 0)
		if algSt == prop.True && ordSt != prop.True {
			// Distributivity over a selective ⊕ implies order
			// monotonicity (the converse can fail: order monotonicity is
			// up to ~, distributivity is equational).
			t.Fatalf("distributive but not order-monotone: %s/%s", add.Name, mul.Name)
		}
	}
}

func TestNOLTransformRoundTrip(t *testing.T) {
	b := baselib.BoundedDistSGT(4)
	o := NOLTransform(b)
	st, w := o.CheckM(nil, 0)
	if st != prop.True {
		t.Fatalf("NOᴸ(bounded-dist) must be monotone: %s", w)
	}
	if st, _ := o.CheckND(nil, 0); st != prop.True {
		t.Fatal("NOᴸ(bounded-dist) must be ND")
	}
}

func TestSetRegistryIntern(t *testing.T) {
	reg := NewSetRegistry()
	a := reg.Intern([]value.V{3, 1, 2, 1})
	b := reg.Intern([]value.V{2, 3, 1})
	if a != b {
		t.Fatalf("order/duplicates must not matter: %v vs %v", a, b)
	}
	if len(reg.Members(a)) != 3 {
		t.Fatalf("members = %v", reg.Members(a))
	}
	empty := reg.Intern(nil)
	if empty.Key() != "{}" {
		t.Fatalf("empty key = %q", empty.Key())
	}
}

func TestMinSetSemigroupLaws(t *testing.T) {
	reg := NewSetRegistry()
	// Divisibility-ish partial order on {1..6} via bitmask subset order
	// keeps the antichain count small; use the pointwise order on pairs.
	p := pointwiseOrder(3)
	s := MinSetSemigroup(p, reg)
	s.CheckAll(nil, 0)
	for _, id := range []prop.ID{prop.Associative, prop.Commutative, prop.Idempotent} {
		if !s.Props.Holds(id) {
			t.Fatalf("min-set semigroup must satisfy %s: %s", id, s.Props.Get(id).Witness)
		}
	}
	if e, ok := s.Identity(); !ok || e != value.V(reg.Intern(nil)) {
		t.Fatalf("identity must be ∅: %v %v", e, ok)
	}
}

func TestMinSetTransformParetoFront(t *testing.T) {
	reg := NewSetRegistry()
	p := pointwiseOrder(2)
	id := ost.New("ids", p, identityOnly())
	ms := MinSetTransform(id, reg)
	// {(0,1), (1,0)} is an antichain: combining it with {(0,0)} collapses
	// to {(0,0)}.
	front := reg.Intern([]value.V{value.Pair{A: 0, B: 1}, value.Pair{A: 1, B: 0}})
	best := reg.Intern([]value.V{value.Pair{A: 0, B: 0}})
	got := ms.Add.Op(front, best)
	if got != best {
		t.Fatalf("(0,0) dominates the front: got %v", got)
	}
	// Combining two incomparable singletons keeps both.
	a := reg.Intern([]value.V{value.Pair{A: 0, B: 1}})
	b := reg.Intern([]value.V{value.Pair{A: 1, B: 0}})
	if ms.Add.Op(a, b) != value.V(front) {
		t.Fatalf("incomparable weights must both survive: %v", ms.Add.Op(a, b))
	}
}

// TestMinSetTransformHomomorphic: the min-set map of a monotone order
// transform yields homomorphic functions (M in the lower-left quadrant) —
// the translation carries global-optimality structure across quadrants.
func TestMinSetTransformHomomorphic(t *testing.T) {
	reg := NewSetRegistry()
	d := baselib.Delay(3, 1)
	ms := MinSetTransform(d, reg)
	st, w := ms.CheckM(nil, 0)
	if st != prop.True {
		t.Fatalf("min-set of monotone delay must be homomorphic: %s", w)
	}
}

func TestMinReductionLaws(t *testing.T) {
	// §VI: min is a reduction on (ℕ, +).
	plus := sg.New("+sat", value.Ints(0, 15), func(a, b value.V) value.V {
		s := a.(int) + b.(int)
		if s > 15 {
			s = 15
		}
		return s
	})
	p := intLeq(15)
	r := rand.New(rand.NewSource(9))
	if msg := CheckReductionLaws(MinReduction(p), plus, r, 300, 5); msg != "" {
		t.Fatalf("min must be a reduction on (ℕ,+): %s", msg)
	}
}

func TestNonReductionDetected(t *testing.T) {
	// "Keep the even elements" is not a reduction on (ℕ,+): law 3 fails
	// because odd+odd sums to even and is lost when filtering early
	// (r({1}∘{1}) = {2} but r(r({1})∘{1}) = ∅).
	bogus := Reduction{Name: "evens", Apply: func(a []value.V) []value.V {
		var out []value.V
		for _, v := range a {
			if v.(int)%2 == 0 {
				out = append(out, v)
			}
		}
		return out
	}}
	plus := sg.New("+sat", value.Ints(0, 7), func(a, b value.V) value.V {
		s := a.(int) + b.(int)
		if s > 7 {
			s = 7
		}
		return s
	})
	r := rand.New(rand.NewSource(10))
	if msg := CheckReductionLaws(bogus, plus, r, 300, 4); msg == "" {
		t.Fatal("bogus reduction must be rejected")
	}
}

func TestAntichainEnumerationGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized carrier")
		}
	}()
	reg := NewSetRegistry()
	MinSetSemigroup(intLeq(30), reg)
}

func TestKBestReductionLaws(t *testing.T) {
	// k-min is a reduction on (ℕ,+sat): + is monotone over ≤.
	plus := func() *sg.Semigroup {
		s := sg.New("+sat", value.Ints(0, 15), func(a, b value.V) value.V {
			x := a.(int) + b.(int)
			if x > 15 {
				x = 15
			}
			return x
		})
		return s
	}()
	p := intLeq(15)
	r := rand.New(rand.NewSource(21))
	for _, k := range []int{1, 2, 3} {
		if msg := CheckReductionLaws(KBestReduction(p, k), plus, r, 300, 6); msg != "" {
			t.Fatalf("k=%d must be a reduction on (ℕ,+): %s", k, msg)
		}
	}
}

func TestKBestReductionFailsOnNonMonotoneOp(t *testing.T) {
	// x∘y = (x·y) mod 16 is not monotone over ≤, so truncating to the k
	// best before combining loses sums that would have been small — law 3
	// must fail for some sampled sets.
	mul := sg.New("×mod16", value.Ints(0, 15), func(a, b value.V) value.V {
		return a.(int) * b.(int) % 16
	})
	p := intLeq(15)
	r := rand.New(rand.NewSource(22))
	if msg := CheckReductionLaws(KBestReduction(p, 2), mul, r, 600, 6); msg == "" {
		t.Fatal("k-min over a non-monotone operation must violate the reduction laws")
	}
}

func TestKBestReductionBasics(t *testing.T) {
	p := intLeq(9)
	red := KBestReduction(p, 3)
	got := red.Apply([]value.V{7, 3, 9, 3, 1, 5})
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("3-best = %v", got)
	}
	if out := red.Apply(nil); len(out) != 0 {
		t.Fatal("k-best of ∅ must be ∅")
	}
}

func TestMinSetOrderSemigroup(t *testing.T) {
	reg := NewSetRegistry()
	s := baselib.ShortestPathOSG(3)
	ms := MinSetOrderSemigroup(s, reg)
	// The Cayley+minset composition of a distributive structure is
	// homomorphic.
	st, w := ms.CheckM(nil, 0)
	if st != prop.True {
		t.Fatalf("minset(cayley(min-plus-order)) must be homomorphic: %s", w)
	}
}

func TestMinSetTransformLazySingletons(t *testing.T) {
	reg := NewSetRegistry()
	d := baselib.Delay(3, 1)
	lazy := MinSetTransformLazy(d, reg)
	r := rand.New(rand.NewSource(5))
	// Sampled carrier yields singleton antichains.
	v := lazy.Carrier().Draw(r).(VSet)
	if len(reg.Members(v)) != 1 {
		t.Fatalf("lazy carrier must sample singletons: %v", v)
	}
	// Identity is the empty set; ⊕ takes minima.
	e, ok := lazy.Add.Identity()
	if !ok || e != value.V(reg.Intern(nil)) {
		t.Fatalf("identity = %v, %v", e, ok)
	}
	a := reg.Intern([]value.V{2})
	b := reg.Intern([]value.V{1})
	if lazy.Add.Op(a, b) != value.V(b) {
		t.Fatal("⊕ must keep the minimum under a total order")
	}
	// Functions act pointwise then reduce.
	got := lazy.F.Fns[0].Apply(a).(VSet)
	if ms := reg.Members(got); len(ms) != 1 || ms[0] != 3 {
		t.Fatalf("f'({2}) = %v", reg.Members(got))
	}
}

func TestMinSetTransformLazyRequiresFiniteF(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	reg := NewSetRegistry()
	inf := ost.New("inf", intLeq(3),
		fn.NewSampled("F∞", func(r *rand.Rand) fn.Fn { return fn.Identity() }))
	MinSetTransformLazy(inf, reg)
}
