package quadrant

import (
	"metarouting/internal/bsg"
	"metarouting/internal/fn"
	"metarouting/internal/order"
	"metarouting/internal/sg"
	"metarouting/internal/value"
)

func newBSG(add, mul *sg.Semigroup) *bsg.Bisemigroup { return bsg.New("rnd", add, mul) }

// intLeq is the usual order on {0..cap}.
func intLeq(cap int) *order.Preorder {
	return order.IntLeq("≤", value.Ints(0, cap))
}

// pointwiseOrder is the componentwise order on {0..n-1}², which has
// nontrivial antichains.
func pointwiseOrder(n int) *order.Preorder {
	a := order.IntLeq("≤", value.Ints(0, n-1))
	return order.Pointwise(a, a)
}

// identityOnly is fn.IdentityOnly re-exported for test brevity.
func identityOnly() *fn.Set { return fn.IdentityOnly() }
