// Package quadrant implements the translations between the four quadrants
// of the algebraic-routing model (§III, Fig 1):
//
//   - the Cayley maps, turning algebraic weight computation (⊗) into
//     functional weight computation (F = {λy. x⊗y});
//   - the natural-order maps NOᴸ and NOᴿ, turning algebraic weight
//     summarization (⊕) into ordered summarization (≲);
//   - the min-set map, turning ordered summarization back into algebraic
//     summarization over antichains — an instance of a Wongseelashote
//     reduction, which this package also defines and checks.
package quadrant

import (
	"math/rand"
	"sort"
	"strings"

	"metarouting/internal/bsg"
	"metarouting/internal/fn"
	"metarouting/internal/order"
	"metarouting/internal/osg"
	"metarouting/internal/ost"
	"metarouting/internal/sg"
	"metarouting/internal/sgt"
	"metarouting/internal/value"
)

// Cayley turns a bisemigroup into the corresponding semigroup transform
// (S, ⊕, {λy. x⊗y | x ∈ S}).
func Cayley(b *bsg.Bisemigroup) *sgt.SemigroupTransform {
	return sgt.FromBisemigroup("cayley("+b.Name+")", b.Add, b.Mul.Op)
}

// CayleyOrder turns an order semigroup into the corresponding order
// transform (S, ≲, {λy. x⊗y | x ∈ S}).
func CayleyOrder(s *osg.OrderSemigroup) *ost.OrderTransform {
	return ost.FromSemigroupOrder("cayley("+s.Name+")", s.Ord, s.Mul.Op)
}

// NOL maps a bisemigroup to an order semigroup via the left natural order
// (§III): NOᴸ(S, ⊕, ⊗) = (S, ≲ᴸ, ⊗) with s1 ≲ᴸ s2 ⟺ s1 = s1⊕s2.
func NOL(b *bsg.Bisemigroup) *osg.OrderSemigroup {
	return osg.New("NOᴸ("+b.Name+")", sg.NaturalLeft(b.Add), b.Mul)
}

// NOR maps a bisemigroup to an order semigroup via the right natural order.
func NOR(b *bsg.Bisemigroup) *osg.OrderSemigroup {
	return osg.New("NOᴿ("+b.Name+")", sg.NaturalRight(b.Add), b.Mul)
}

// NOLTransform maps a semigroup transform to an order transform via the
// left natural order: NOᴸ(S, ⊕, F) = (S, ≲ᴸ, F).
func NOLTransform(t *sgt.SemigroupTransform) *ost.OrderTransform {
	return ost.New("NOᴸ("+t.Name+")", sg.NaturalLeft(t.Add), t.F)
}

// NORTransform maps a semigroup transform to an order transform via the
// right natural order.
func NORTransform(t *sgt.SemigroupTransform) *ost.OrderTransform {
	return ost.New("NOᴿ("+t.Name+")", sg.NaturalRight(t.Add), t.F)
}

// VSet is a canonical finite set of carrier values, comparable with ==.
// It is the carrier element type of min-set-mapped structures: the key is
// the sorted, formatted element list and Elems holds the members.
//
// Only Key participates in equality; Elems is auxiliary payload reached
// through the owning structure's registry, so two VSets built from the
// same member set compare equal regardless of construction order.
type VSet struct {
	key string
}

// Key returns the canonical rendering of the set.
func (s VSet) Key() string { return s.key }

// String implements fmt.Stringer.
func (s VSet) String() string { return s.key }

// SetRegistry interns VSets and remembers their members.
type SetRegistry struct {
	members map[string][]value.V
}

// NewSetRegistry returns an empty registry.
func NewSetRegistry() *SetRegistry {
	return &SetRegistry{members: make(map[string][]value.V)}
}

// Intern canonicalizes elems (sorted by rendering, deduplicated) into a
// VSet and records its membership.
func (reg *SetRegistry) Intern(elems []value.V) VSet {
	type kv struct {
		k string
		v value.V
	}
	kvs := make([]kv, 0, len(elems))
	seen := make(map[value.V]bool, len(elems))
	for _, e := range elems {
		if !seen[e] {
			seen[e] = true
			kvs = append(kvs, kv{value.Format(e), e})
		}
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	keys := make([]string, len(kvs))
	vals := make([]value.V, len(kvs))
	for i, p := range kvs {
		keys[i] = p.k
		vals[i] = p.v
	}
	key := "{" + strings.Join(keys, ", ") + "}"
	if _, ok := reg.members[key]; !ok {
		reg.members[key] = vals
	}
	return VSet{key: key}
}

// Members returns the elements of an interned set.
func (reg *SetRegistry) Members(s VSet) []value.V { return reg.members[s.key] }

// MinSetSemigroup turns a preorder into a semigroup over antichains
// (§III): A ⊕ B := min≲(A ∪ B). The carrier is the set of ≲-antichains
// of the (finite) order's carrier; the empty set is the identity.
func MinSetSemigroup(p *order.Preorder, reg *SetRegistry) *sg.Semigroup {
	if !p.Car.Finite() {
		panic("quadrant: MinSetSemigroup requires a finite carrier")
	}
	elems := antichains(p, reg)
	car := value.NewFinite("A("+p.Car.Name+")", elems)
	s := sg.New("minset("+p.Name+")", car, func(a, b value.V) value.V {
		as, bs := reg.Members(a.(VSet)), reg.Members(b.(VSet))
		union := make([]value.V, 0, len(as)+len(bs))
		union = append(union, as...)
		union = append(union, bs...)
		return reg.Intern(p.MinSet(union))
	})
	s.WithIdentity(reg.Intern(nil))
	return s
}

// MinSetTransform turns an order transform into a semigroup transform
// (§III): carrier S' = {A ⊆ S | min≲(A) = A}, A ⊕ B = min(A ∪ B), and
// f'(A) = min{f(a) | a ∈ A}.
func MinSetTransform(t *ost.OrderTransform, reg *SetRegistry) *sgt.SemigroupTransform {
	if !t.Finite() {
		panic("quadrant: MinSetTransform requires a finite structure")
	}
	add := MinSetSemigroup(t.Ord, reg)
	fns := make([]fn.Fn, 0, len(t.F.Fns))
	for _, f := range t.F.Fns {
		f := f
		fns = append(fns, fn.Fn{
			Name: f.Name + "'",
			Apply: func(v value.V) value.V {
				ms := reg.Members(v.(VSet))
				out := make([]value.V, 0, len(ms))
				for _, a := range ms {
					out = append(out, f.Apply(a))
				}
				return reg.Intern(t.Ord.MinSet(out))
			},
		})
	}
	return sgt.New("minset("+t.Name+")", add, fn.NewFinite(t.F.Name+"'", fns))
}

// MinSetTransformLazy is MinSetTransform without the antichain-carrier
// enumeration: the carrier is presented as sampled singletons, so the
// structure cannot be exhaustively property-checked, but the fixpoint
// solvers — which only ever touch sets reachable from the origin — can
// compute Pareto route sets over orders whose antichain lattice is far
// too large to enumerate (e.g. products of realistic metric ranges).
// The function set must still be finite.
func MinSetTransformLazy(t *ost.OrderTransform, reg *SetRegistry) *sgt.SemigroupTransform {
	if !t.F.Finite() {
		panic("quadrant: MinSetTransformLazy requires a finite function set")
	}
	car := value.NewSampled("A("+t.Ord.Car.Name+")", func(r *rand.Rand) value.V {
		return reg.Intern([]value.V{t.Ord.Car.Draw(r)})
	})
	add := sg.New("minset("+t.Ord.Name+")", car, func(a, b value.V) value.V {
		as, bs := reg.Members(a.(VSet)), reg.Members(b.(VSet))
		union := make([]value.V, 0, len(as)+len(bs))
		union = append(union, as...)
		union = append(union, bs...)
		return reg.Intern(t.Ord.MinSet(union))
	})
	add.WithIdentity(reg.Intern(nil))
	fns := make([]fn.Fn, 0, len(t.F.Fns))
	for _, f := range t.F.Fns {
		f := f
		fns = append(fns, fn.Fn{
			Name: f.Name + "'",
			Apply: func(v value.V) value.V {
				ms := reg.Members(v.(VSet))
				out := make([]value.V, 0, len(ms))
				for _, a := range ms {
					out = append(out, f.Apply(a))
				}
				return reg.Intern(t.Ord.MinSet(out))
			},
		})
	}
	return sgt.New("minset("+t.Name+")", add, fn.NewFinite(t.F.Name+"'", fns))
}

// MinSetOrderSemigroup composes the min-set map with the Cayley map,
// turning an order semigroup into a semigroup transform (§III's route
// from the upper-right to the lower-left quadrant).
func MinSetOrderSemigroup(s *osg.OrderSemigroup, reg *SetRegistry) *sgt.SemigroupTransform {
	return MinSetTransform(CayleyOrder(s), reg)
}

// antichains enumerates every subset A of the carrier with min≲(A) = A,
// interned into reg. Exponential in the carrier size; callers keep
// carriers small (≤ ~12 elements).
func antichains(p *order.Preorder, reg *SetRegistry) []value.V {
	n := len(p.Car.Elems)
	if n > 20 {
		panic("quadrant: carrier too large for antichain enumeration: " + p.Car.Name)
	}
	var out []value.V
	seen := make(map[VSet]bool)
	for mask := 0; mask < 1<<n; mask++ {
		var sub []value.V
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, p.Car.Elems[i])
			}
		}
		min := p.MinSet(sub)
		if len(min) != len(sub) {
			continue
		}
		vs := reg.Intern(sub)
		if !seen[vs] {
			seen[vs] = true
			out = append(out, vs)
		}
	}
	return out
}

// Reduction is a Wongseelashote reduction on a semigroup (V, ∘): a
// function r : 2ⱽ → 2ⱽ satisfying
//
//	(1) r(∅) = ∅
//	(2) r(A ∪ B) = r(r(A) ∪ B)
//	(3) r(A ∘ B) = r(r(A) ∘ B) = r(A ∘ r(B))
//
// where A ∘ B = {a∘b | a ∈ A, b ∈ B} (§VI).
type Reduction struct {
	// Name labels the reduction, e.g. "min".
	Name string
	// Apply maps a set of weights to its reduced form.
	Apply func(a []value.V) []value.V
}

// MinReduction is the min-set-map as a reduction: r(A) = min≲(A).
func MinReduction(p *order.Preorder) Reduction {
	return Reduction{Name: "min_" + p.Name, Apply: p.MinSet}
}

// KBestReduction keeps the k best distinct elements under a total
// preorder: r(A) = the k ≲-smallest members of A. It satisfies the
// reduction laws on any semigroup whose operation is monotone over the
// order — the algebraic footing for k-best path computation that §VI
// anticipates. (For non-monotone operations law 3 can fail; the tests
// exhibit this.)
func KBestReduction(p *order.Preorder, k int) Reduction {
	return Reduction{
		Name: "kmin_" + p.Name,
		Apply: func(a []value.V) []value.V {
			// Dedup, then sort by the order, then truncate. Stable order
			// of equivalent elements follows first appearance.
			var distinct []value.V
			seen := make(map[value.V]bool, len(a))
			for _, x := range a {
				if !seen[x] {
					seen[x] = true
					distinct = append(distinct, x)
				}
			}
			sort.SliceStable(distinct, func(i, j int) bool {
				return p.Lt(distinct[i], distinct[j])
			})
			if len(distinct) > k {
				distinct = distinct[:k]
			}
			return distinct
		},
	}
}

// CheckReductionLaws verifies laws (1)–(3) for r over the semigroup s by
// sampling random subsets of the carrier. It returns an empty string when
// no violation is found, or a description of the first violation.
func CheckReductionLaws(red Reduction, s *sg.Semigroup, r *rand.Rand, trials, maxSet int) string {
	reg := NewSetRegistry()
	canon := func(a []value.V) VSet { return reg.Intern(a) }
	randSet := func() []value.V {
		k := r.Intn(maxSet + 1)
		out := make([]value.V, 0, k)
		for i := 0; i < k; i++ {
			out = append(out, s.Car.Draw(r))
		}
		return out
	}
	setOp := func(a, b []value.V) []value.V {
		out := make([]value.V, 0, len(a)*len(b))
		for _, x := range a {
			for _, y := range b {
				out = append(out, s.Op(x, y))
			}
		}
		return out
	}
	if got := red.Apply(nil); len(got) != 0 {
		return "law 1 violated: r(∅) ≠ ∅"
	}
	for i := 0; i < trials; i++ {
		a, b := randSet(), randSet()
		lhs := canon(red.Apply(append(append([]value.V{}, a...), b...)))
		rhs := canon(red.Apply(append(append([]value.V{}, red.Apply(a)...), b...)))
		if lhs != rhs {
			return "law 2 violated: r(A∪B) ≠ r(r(A)∪B) for A=" + value.FormatSet(a) + " B=" + value.FormatSet(b)
		}
		lhs3 := canon(red.Apply(setOp(a, b)))
		mid3 := canon(red.Apply(setOp(red.Apply(a), b)))
		rhs3 := canon(red.Apply(setOp(a, red.Apply(b))))
		if lhs3 != mid3 || lhs3 != rhs3 {
			return "law 3 violated for A=" + value.FormatSet(a) + " B=" + value.FormatSet(b)
		}
	}
	return ""
}
