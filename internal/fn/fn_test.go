package fn

import (
	"math/rand"
	"testing"

	"metarouting/internal/value"
)

func TestIdentityAndConst(t *testing.T) {
	id := Identity()
	if id.Apply(42) != 42 || id.Name != "id" {
		t.Fatal("identity wrong")
	}
	k := Const(7)
	if k.Apply(3) != 7 || k.Apply(9) != 7 {
		t.Fatal("constant wrong")
	}
	if k.Name != "κ_7" {
		t.Fatalf("constant name = %q", k.Name)
	}
}

func TestComposeConvention(t *testing.T) {
	inc := Fn{Name: "+1", Apply: func(v value.V) value.V { return v.(int) + 1 }}
	dbl := Fn{Name: "×2", Apply: func(v value.V) value.V { return v.(int) * 2 }}
	// Compose(f, g)(x) = f(g(x)): f outermost.
	c := Compose(inc, dbl)
	if got := c.Apply(3); got != 7 {
		t.Fatalf("(+1∘×2)(3) = %v, want 7", got)
	}
	if c.Name != "+1∘×2" {
		t.Fatalf("name = %q", c.Name)
	}
}

func TestSetLookupAndDraw(t *testing.T) {
	s := NewFinite("F", []Fn{Identity(), Const(1)})
	if !s.Finite() || s.Size() != 2 {
		t.Fatal("finite set shape wrong")
	}
	if f, ok := s.ByName("κ_1"); !ok || f.Apply(0) != 1 {
		t.Fatal("ByName failed")
	}
	if _, ok := s.ByName("zzz"); ok {
		t.Fatal("unknown name resolved")
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		f := s.Draw(r)
		if f.Name != "id" && f.Name != "κ_1" {
			t.Fatalf("Draw outside set: %q", f.Name)
		}
	}
}

func TestSampledSet(t *testing.T) {
	s := NewSampled("F∞", func(r *rand.Rand) Fn { return Const(r.Intn(3)) })
	if s.Finite() || s.Size() != -1 {
		t.Fatal("sampled set must report infinite")
	}
	r := rand.New(rand.NewSource(2))
	if f := s.Draw(r); f.Apply(99).(int) > 2 {
		t.Fatal("sampler broken")
	}
}

func TestDrawEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFinite("∅", nil).Draw(rand.New(rand.NewSource(1)))
}

func TestIdentityOnlyAndConstants(t *testing.T) {
	if s := IdentityOnly(); s.Size() != 1 || s.Fns[0].Name != "id" {
		t.Fatal("IdentityOnly wrong")
	}
	c := Constants(value.Ints(0, 2))
	if c.Size() != 3 {
		t.Fatalf("Constants size = %d", c.Size())
	}
	for i, f := range c.Fns {
		if f.Apply(99) != i {
			t.Fatalf("κ_%d applies wrong", i)
		}
	}
}

func TestConstantsInfiniteCarrier(t *testing.T) {
	car := value.NewSampled("ℕ", func(r *rand.Rand) value.V { return r.Intn(5) })
	c := Constants(car)
	if c.Finite() {
		t.Fatal("constants over an infinite carrier must be sampled")
	}
	r := rand.New(rand.NewSource(3))
	f := c.Draw(r)
	if f.Apply(1) != f.Apply(2) {
		t.Fatal("drawn function must be constant")
	}
}

func TestCayley(t *testing.T) {
	car := value.Ints(0, 4)
	s := Cayley("F", car, func(a, b value.V) value.V {
		x := a.(int) + b.(int)
		if x > 4 {
			x = 4
		}
		return x
	})
	if s.Size() != 5 {
		t.Fatalf("Cayley size = %d", s.Size())
	}
	// The function for x=2 is λy. 2⊕y.
	if got := s.Fns[2].Apply(1); got != 3 {
		t.Fatalf("Cayley action wrong: %v", got)
	}
}

func TestPairFn(t *testing.T) {
	p := PairFn(Const(1), Identity())
	got := p.Apply(value.Pair{A: 9, B: 8}).(value.Pair)
	if got.A != 1 || got.B != 8 {
		t.Fatalf("PairFn = %v", got)
	}
}

func TestProductSet(t *testing.T) {
	a := NewFinite("A", []Fn{Identity(), Const(0)})
	b := NewFinite("B", []Fn{Identity()})
	p := Product(a, b)
	if p.Size() != 2 {
		t.Fatalf("product size = %d", p.Size())
	}
	for _, f := range p.Fns {
		if _, ok := f.Apply(value.Pair{A: 1, B: 2}).(value.Pair); !ok {
			t.Fatal("product functions must map pairs to pairs")
		}
	}
}

func TestDisjointUnionTagsAreTransparent(t *testing.T) {
	a := NewFinite("A", []Fn{Const(1)})
	b := NewFinite("B", []Fn{Const(2)})
	u := DisjointUnion(a, b)
	if u.Size() != 2 {
		t.Fatalf("union size = %d", u.Size())
	}
	// §II: application ignores the tags.
	if u.Fns[0].Apply(9) != 1 || u.Fns[1].Apply(9) != 2 {
		t.Fatal("tagged application must match the untagged function")
	}
	if u.Fns[0].Name != "(1, κ_1)" || u.Fns[1].Name != "(2, κ_2)" {
		t.Fatalf("tag names wrong: %q, %q", u.Fns[0].Name, u.Fns[1].Name)
	}
}
