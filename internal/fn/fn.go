// Package fn provides named unary function sets — the F component of the
// functional quadrants (semigroup transforms and order transforms).
//
// In a network, each directed arc is labelled with one function from the
// set; the weight of a path is the composition of its arc functions
// applied to an originated value (§II). Functions carry names so that
// counterexamples and topologies are readable.
package fn

import (
	"math/rand"

	"metarouting/internal/value"
)

// Fn is a named unary transform on a carrier.
type Fn struct {
	// Name labels the function in diagnostics and topology files,
	// e.g. "+3", "κ_c", "(id,g2)".
	Name string
	// Apply is the function itself.
	Apply func(value.V) value.V
}

// Identity is the identity function.
func Identity() Fn {
	return Fn{Name: "id", Apply: func(v value.V) value.V { return v }}
}

// Const returns the constant function κ_b.
func Const(b value.V) Fn {
	return Fn{Name: "κ_" + value.Format(b), Apply: func(value.V) value.V { return b }}
}

// Compose returns g∘f... no: returns the composition "f then g applied
// outermost", i.e. (Compose(f, g))(x) = f(g(x)), matching the paper's path
// weight v(p) = (f₍i1,i2₎ ∘ … ∘ f₍ik-1,ik₎)(a): the arc nearest the source
// is applied last.
func Compose(f, g Fn) Fn {
	return Fn{Name: f.Name + "∘" + g.Name, Apply: func(v value.V) value.V { return f.Apply(g.Apply(v)) }}
}

// Set is a named collection of functions over a common carrier.
type Set struct {
	// Name labels the set, e.g. "F_sp" or "F+G".
	Name string
	// Fns enumerates the functions when the set is finite; nil when the
	// set is infinite/sampled.
	Fns []Fn
	// Sample draws a random function; required when Fns is nil.
	Sample func(r *rand.Rand) Fn
}

// Finite reports whether the set enumerates its functions.
func (s *Set) Finite() bool { return s.Fns != nil }

// Size returns the number of functions of a finite set, or -1.
func (s *Set) Size() int {
	if s.Fns == nil {
		return -1
	}
	return len(s.Fns)
}

// Draw returns a random function from the set.
func (s *Set) Draw(r *rand.Rand) Fn {
	if s.Sample != nil {
		return s.Sample(r)
	}
	if len(s.Fns) == 0 {
		panic("fn: Draw on empty function set " + s.Name)
	}
	return s.Fns[r.Intn(len(s.Fns))]
}

// ByName returns the function named n, if present in a finite set.
func (s *Set) ByName(n string) (Fn, bool) {
	for _, f := range s.Fns {
		if f.Name == n {
			return f, true
		}
	}
	return Fn{}, false
}

// NewFinite builds a finite function set.
func NewFinite(name string, fns []Fn) *Set { return &Set{Name: name, Fns: fns} }

// NewSampled builds an infinite function set from a sampler.
func NewSampled(name string, sample func(r *rand.Rand) Fn) *Set {
	return &Set{Name: name, Sample: sample}
}

// IdentityOnly returns {id} — the function set of the right(·) operator
// (§II): once originated, a value can only be copied.
func IdentityOnly() *Set { return NewFinite("{id}", []Fn{Identity()}) }

// Constants returns {κ_b | b ∈ car} — the function set of the left(·)
// operator (§II): the last link completely determines the value, like
// BGP's local preference. It requires a finite carrier.
func Constants(car *value.Carrier) *Set {
	if !car.Finite() {
		return NewSampled("{κ_b}", func(r *rand.Rand) Fn { return Const(car.Draw(r)) })
	}
	fns := make([]Fn, 0, len(car.Elems))
	for _, b := range car.Elems {
		fns = append(fns, Const(b))
	}
	return NewFinite("{κ_b}", fns)
}

// Cayley returns {λy. x⊕y | x ∈ car} — the function set obtained from a
// semigroup operation by left action (§III's Cayley map).
func Cayley(name string, car *value.Carrier, op func(a, b value.V) value.V) *Set {
	if !car.Finite() {
		return NewSampled(name, func(r *rand.Rand) Fn {
			x := car.Draw(r)
			return Fn{Name: value.Format(x) + "⊕·", Apply: func(y value.V) value.V { return op(x, y) }}
		})
	}
	fns := make([]Fn, 0, len(car.Elems))
	for _, x := range car.Elems {
		x := x
		fns = append(fns, Fn{Name: value.Format(x) + "⊕·", Apply: func(y value.V) value.V { return op(x, y) }})
	}
	return NewFinite(name, fns)
}

// PairFn builds the product function (f,g)(s,t) = (f(s), g(t)).
func PairFn(f, g Fn) Fn {
	return Fn{
		Name: "(" + f.Name + "," + g.Name + ")",
		Apply: func(v value.V) value.V {
			p := v.(value.Pair)
			return value.Pair{A: f.Apply(p.A), B: g.Apply(p.B)}
		},
	}
}

// Product returns {(f,g) | f ∈ s, g ∈ t} acting on pairs — the function
// set of a lexicographic product of transforms (§II).
func Product(s, t *Set) *Set {
	name := s.Name + "×" + t.Name
	if s.Finite() && t.Finite() {
		fns := make([]Fn, 0, len(s.Fns)*len(t.Fns))
		for _, f := range s.Fns {
			for _, g := range t.Fns {
				fns = append(fns, PairFn(f, g))
			}
		}
		return NewFinite(name, fns)
	}
	return NewSampled(name, func(r *rand.Rand) Fn {
		return PairFn(s.Draw(r), t.Draw(r))
	})
}

// TagFn wraps f with a disjoint-union tag. Application ignores the tag
// (§II: "the application of these functions is as if the tags did not
// exist"), but the name records it.
func TagFn(tag int, f Fn) Fn {
	name := "(1, " + f.Name + ")"
	if tag != 0 {
		name = "(2, " + f.Name + ")"
	}
	return Fn{Name: name, Apply: f.Apply}
}

// DisjointUnion returns F+G = ({1}×F) ∪ ({2}×G) (§II): the two function
// sets are kept apart by tags but act on the same carrier.
func DisjointUnion(f, g *Set) *Set {
	name := f.Name + "+" + g.Name
	if f.Finite() && g.Finite() {
		fns := make([]Fn, 0, len(f.Fns)+len(g.Fns))
		for _, x := range f.Fns {
			fns = append(fns, TagFn(0, x))
		}
		for _, y := range g.Fns {
			fns = append(fns, TagFn(1, y))
		}
		return NewFinite(name, fns)
	}
	return NewSampled(name, func(r *rand.Rand) Fn {
		if r.Intn(2) == 0 {
			return TagFn(0, f.Draw(r))
		}
		return TagFn(1, g.Draw(r))
	})
}
