package solve

import (
	"time"

	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/value"
)

// This file holds the worklist (SPFA-style) variant of the engine-backed
// Bellman–Ford and its delta entry point. Instead of sweeping every node
// each round, a FIFO of dirty nodes is drained to fixpoint: popping a
// node recomputes its best weight from its out-arcs with the exact
// selection loop of the synchronous solver (first arc achieving a
// minimal candidate wins), and a routedness-or-weight change re-dirties
// the node's in-neighbours through the graph's shared reverse CSR
// index. The delta entry point warm-starts that drain from a previous
// Result: for an arc-down event the forwarding subtree that routed
// through the arc is invalidated before re-relaxation (so stale local
// optima cannot survive on non-tree nodes they were never valid for),
// for an arc-up event the arc's tail is seeded, and everything outside
// the frontier keeps its previous fixpoint value untouched.

// ArcToggle describes one net arc state change feeding a delta solve:
// arc index plus its new state (Down true = arc now disabled).
type ArcToggle struct {
	Arc  int
	Down bool
}

// DeltaStats reports how a delta solve ran. When UsedDelta is false the
// solver fell back to a from-scratch Bellman–Ford (unusable previous
// result, frontier too large, or the drain failed to converge inside
// its budget) and only Frontier is meaningful.
type DeltaStats struct {
	// UsedDelta is true when the warm-start drain produced the result.
	UsedDelta bool
	// Frontier is the number of seed nodes (invalidated subtree members
	// plus up-arc tails) the toggles dirtied.
	Frontier int
	// Pops counts worklist pops; Relaxations counts arc relaxations.
	Pops        int
	Relaxations uint64
	// Touched lists, in ascending order, every node that was ever
	// enqueued during the drain — a superset of the nodes whose
	// routedness, weight or next hop differs from the previous result.
	// Nodes absent from Touched kept their entire neighbourhood state,
	// which is what lets the RIB layer reuse their entries by pointer.
	Touched []int
	// Clean reports that the produced fixpoint was verified to be a
	// clean dest-rooted forwarding tree — every routed node's primary
	// next-hop chain reaches the destination (see VerifyForwardTree).
	// Only BellmanFordDeltaRaw sets it; a clean result licenses the
	// O(frontier) sparse warm start on the next delta for the same
	// destination.
	Clean bool
}

// defaultPopBudget mirrors the synchronous solver's round budget: the
// sweep solver gives up after 2N+4 rounds of N node recomputations, so
// the worklist gives up after the same number of pops. Algebras that
// oscillate (non-monotone policy gadgets) hit the budget and report
// Converged=false instead of looping forever.
func defaultPopBudget(n int) int { return (2*n+4)*n + n + 4 }

// WorklistEngine solves a single destination with the worklist solver;
// the result is bit-identical to BellmanFordEngine whenever the
// synchronous solver converges. maxPops ≤ 0 applies the default budget.
func WorklistEngine(eng exec.Algebra, g *graph.Graph, dest int, origin value.V, maxPops int) *Result {
	return NewWorkspace().Worklist(eng, g, dest, origin, maxPops)
}

// Worklist runs the worklist solver out of the workspace's reusable
// buffers, seeding from the destination's in-neighbours.
func (ws *Workspace) Worklist(eng exec.Algebra, g *graph.Graph, dest int, origin value.V, maxPops int) *Result {
	var t0 time.Time
	if ws.Metrics != nil {
		t0 = time.Now()
	}
	o := exec.MustIntern(eng, origin)
	ws.reset(g.N, dest, o)
	ws.resetWorklist(g.N)
	for _, ai := range g.RevIn().In(dest) {
		ws.push(int(g.Arcs[ai].From), dest)
	}
	pops, relaxations, converged := ws.drain(eng, g, nil, dest, maxPops, nil)
	res := ws.materialize(eng, dest, pops, converged)
	if m := ws.Metrics; m != nil {
		m.Runs.Inc()
		m.Rounds.Add(uint64(pops))
		m.Relaxations.Add(relaxations)
		m.SolveNS.Observe(time.Since(t0).Nanoseconds())
	}
	return res
}

// BellmanFordDelta re-solves dest after the given arc toggles, warm-
// starting from prev (a converged Result for the same destination and
// origin on the pre-toggle graph). g must already be the post-toggle
// view and disabled the post-toggle mask (nil is accepted and only
// costs wasted pops). The result is bit-identical to a from-scratch
// ws.BellmanFord on g for algebras whose fixpoint is unique from any
// realisable warm start (monotone or increasing — the caller gates on
// inferred properties; see rib.DeltaLicensed). Whenever the warm start
// is unusable — nil/unconverged/mismatched prev, a frontier of half the
// graph or more, or a drain that exhausts maxPops — it transparently
// falls back to the from-scratch solver, so the answer is correct for
// every algebra; only the speed differs.
func (ws *Workspace) BellmanFordDelta(eng exec.Algebra, g *graph.Graph, disabled []bool, dest int, origin value.V, prev *Result, toggles []ArcToggle, maxPops int) (*Result, DeltaStats) {
	fallback := func(frontier int) (*Result, DeltaStats) {
		return ws.BellmanFord(eng, g, dest, origin, 0), DeltaStats{Frontier: frontier}
	}
	if prev == nil || !prev.Converged || prev.Dest != dest ||
		len(prev.Routed) != g.N || !prev.Routed[dest] {
		return fallback(0)
	}
	var t0 time.Time
	if ws.Metrics != nil {
		t0 = time.Now()
	}
	o := exec.MustIntern(eng, origin)
	ws.reset(g.N, dest, o)
	ws.resetWorklist(g.N)
	if po, err := eng.Intern(prev.Weights[dest]); err != nil || po != o {
		return fallback(0)
	}
	for u := 0; u < g.N; u++ {
		if u == dest || !prev.Routed[u] {
			continue
		}
		idx, err := eng.Intern(prev.Weights[u])
		if err != nil {
			return fallback(0)
		}
		ws.routed[u] = true
		ws.w[u] = idx
		ws.nextHop[u] = prev.NextHop[u]
	}
	pops, relaxations, frontier, ok := ws.deltaDrain(eng, g, disabled, dest, toggles, maxPops)
	if !ok {
		return fallback(frontier)
	}
	res := ws.materialize(eng, dest, pops, true)
	st := DeltaStats{
		UsedDelta:   true,
		Frontier:    frontier,
		Pops:        pops,
		Relaxations: relaxations,
		Touched:     ws.sortedTouched(),
	}
	if m := ws.Metrics; m != nil {
		m.Runs.Inc()
		m.Rounds.Add(uint64(pops))
		m.Relaxations.Add(relaxations)
		m.SolveNS.Observe(time.Since(t0).Nanoseconds())
	}
	return res, st
}

// WarmStart supplies one node's previous fixpoint state to
// BellmanFordDeltaRaw in index form: routed, the engine weight index,
// and the primary next hop (-1 at the destination and at unrouted
// nodes). The arena column store answers it straight from slots, which
// is what lets delta warm-starts share state by index instead of
// re-interning a column of interface values.
type WarmStart func(u int) (routed bool, w int32, nextHop int)

// BellmanFordDeltaRaw is BellmanFordDelta with the warm start supplied
// in index form and the result returned as a workspace-aliased Raw: the
// arena column path. prev must describe a converged fixpoint for the
// same destination and origin on the pre-toggle graph (the caller
// asserts convergence; the origin is re-checked here). All fallback
// behaviour matches BellmanFordDelta — on an unusable warm start,
// oversized frontier or exhausted budget the from-scratch sweep runs
// and only DeltaStats.Frontier and Clean are meaningful.
//
// cleanPrev, asserted by the caller, certifies that prev is a clean
// dest-rooted forwarding tree (the previous column's verified Clean
// flag). It selects the sparse warm start: previous state is
// materialized lazily through prev only where the drain looks, the
// dense path's O(N) loading, purging and indexing passes are skipped
// entirely (sound because the purge is a no-op on a clean tree), and
// the whole delta costs O(frontier·deg). On the sparse path the
// returned Raw is only populated at touched nodes, toggle tails and
// their out-neighbourhoods — exactly the slots the RIB delta rebuild
// reads; every other entry is stale scratch.
func (ws *Workspace) BellmanFordDeltaRaw(eng exec.Algebra, g *graph.Graph, disabled []bool, dest int, origin value.V, prev WarmStart, cleanPrev bool, toggles []ArcToggle, maxPops int) (Raw, DeltaStats) {
	var t0 time.Time
	if ws.Metrics != nil {
		t0 = time.Now()
	}
	scratch := func(frontier int) (Raw, DeltaStats) {
		raw := ws.BellmanFordRaw(eng, g, dest, origin, 0)
		clean := raw.Converged && ws.VerifyForwardTree(raw)
		return raw, DeltaStats{Frontier: frontier, Clean: clean}
	}
	o := exec.MustIntern(eng, origin)
	if routedD, wD, _ := prev(dest); !routedD || wD != o {
		return scratch(0)
	}
	var pops, frontier int
	var relaxations uint64
	var ok bool
	var warm WarmStart
	if cleanPrev {
		warm = prev
		ws.sparseReset(g.N)
		ws.loadNode(dest, true, o, -1)
		pops, relaxations, frontier, ok = ws.deltaDrainSparse(eng, g, disabled, dest, prev, toggles, maxPops)
	} else {
		ws.reset(g.N, dest, o)
		ws.resetWorklist(g.N)
		for u := 0; u < g.N; u++ {
			if u == dest {
				continue
			}
			routed, w, nh := prev(u)
			if !routed {
				continue
			}
			ws.routed[u] = true
			ws.w[u] = w
			ws.nextHop[u] = nh
		}
		pops, relaxations, frontier, ok = ws.deltaDrain(eng, g, disabled, dest, toggles, maxPops)
	}
	if !ok {
		return scratch(frontier)
	}
	// Certify the new fixpoint for the next warm start. Touched chains
	// suffice: the warm start was purged (dense) or certified clean
	// (sparse), so any new forwarding cycle must pass through a touched
	// node — see verifyTouched.
	st := DeltaStats{
		UsedDelta:   true,
		Frontier:    frontier,
		Pops:        pops,
		Relaxations: relaxations,
		Touched:     ws.sortedTouched(),
		Clean:       ws.verifyTouched(g.N, dest, warm),
	}
	if m := ws.Metrics; m != nil {
		m.Runs.Inc()
		m.Rounds.Add(uint64(pops))
		m.Relaxations.Add(relaxations)
		m.SolveNS.Observe(time.Since(t0).Nanoseconds())
	}
	return ws.raw(dest, pops, true), st
}

// deltaDrain is the shared warm-start core: with the previous fixpoint
// already loaded into the workspace state it builds the forwarding-tree
// children index, invalidates ⊤-plateau phantom routes and downed
// subtrees, seeds the frontier, and drains the worklist. ok is false
// when the caller must fall back to the from-scratch sweep (frontier at
// half the graph or more, or an unconverged drain).
func (ws *Workspace) deltaDrain(eng exec.Algebra, g *graph.Graph, disabled []bool, dest int, toggles []ArcToggle, maxPops int) (pops int, relaxations uint64, frontier int, ok bool) {
	// Children index over the previous forwarding tree (descending node
	// order so each child list comes out ascending).
	for u := g.N - 1; u >= 0; u-- {
		if u == dest || !ws.routed[u] || ws.nextHop[u] < 0 {
			continue
		}
		p := ws.nextHop[u]
		ws.childNext[u] = ws.childHead[p]
		ws.childHead[p] = int32(u)
	}
	// Routed nodes whose next-hop chain never reaches dest — ⊤-plateau
	// forwarding loops that sustain each other circularly — must not
	// survive the warm start: their support is not a real path, so it
	// can outlive the connectivity that once seeded it and leave phantom
	// routes a from-scratch build would not have. Mark the dest-rooted
	// tree through the children index and invalidate everything routed
	// outside it.
	inTree := ws.prevR
	for i := range inTree {
		inTree[i] = false
	}
	inTree[dest] = true
	var stack []int
	stack = append(stack, dest)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for c := ws.childHead[s]; c >= 0; c = ws.childNext[c] {
			if !inTree[c] {
				inTree[c] = true
				stack = append(stack, int(c))
			}
		}
	}
	for u := 0; u < g.N; u++ {
		if u != dest && ws.routed[u] && !inTree[u] {
			ws.routed[u] = false
			ws.nextHop[u] = -1
			ws.push(u, dest)
		}
	}
	// Frontier: invalidate the forwarding subtree behind each downed
	// primary arc (every node whose chain traversed the arc), then seed
	// the tail of each raised arc.
	for _, t := range toggles {
		if !t.Down {
			continue
		}
		x, y := g.Arcs[t.Arc].From, g.Arcs[t.Arc].To
		if x == dest || !ws.routed[x] || ws.nextHop[x] != y {
			continue
		}
		stack = append(stack[:0], x)
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if !ws.routed[s] {
				continue
			}
			ws.routed[s] = false
			ws.nextHop[s] = -1
			ws.push(s, dest)
			for c := ws.childHead[s]; c >= 0; c = ws.childNext[c] {
				stack = append(stack, int(c))
			}
		}
	}
	// Invalidation flips nodes to unrouted silently — no pop ever
	// reports the transition for nodes that stay unrouted — yet a
	// neighbour outside the frontier may have held one of them as an
	// equal-cost alternative. Push the in-neighbours of every
	// invalidated node so they rescan and land in the touched set (their
	// weights won't move; this is an entry-level obligation).
	rev := g.RevIn()
	for i, inval := 0, len(ws.queue); i < inval; i++ {
		for _, ai := range rev.In(ws.queue[i]) {
			if disabled != nil && int(ai) < len(disabled) && disabled[ai] {
				continue
			}
			ws.push(g.Arcs[ai].From, dest)
		}
	}
	for _, t := range toggles {
		if !t.Down && g.Arcs[t.Arc].From != dest {
			ws.push(g.Arcs[t.Arc].From, dest)
		}
	}
	frontier = len(ws.queue)
	if 2*frontier >= g.N {
		// Heuristic cutover: a frontier of half the nodes or more will
		// touch most of the graph anyway — the sweep solver's tight loop
		// wins over worklist bookkeeping.
		return 0, 0, frontier, false
	}
	var converged bool
	pops, relaxations, converged = ws.drain(eng, g, disabled, dest, maxPops, nil)
	if !converged {
		return pops, relaxations, frontier, false
	}
	return pops, relaxations, frontier, true
}

// resetWorklist sizes and clears the worklist scratch for an n-node
// drain.
func (ws *Workspace) resetWorklist(n int) {
	if cap(ws.dirty) < n {
		ws.dirty = make([]bool, n)
		ws.touched = make([]bool, n)
		ws.childHead = make([]int32, n)
		ws.childNext = make([]int32, n)
	}
	ws.dirty = ws.dirty[:n]
	ws.touched = ws.touched[:n]
	ws.childHead = ws.childHead[:n]
	ws.childNext = ws.childNext[:n]
	for i := 0; i < n; i++ {
		ws.dirty[i] = false
		ws.touched[i] = false
		ws.childHead[i] = -1
		ws.childNext[i] = -1
	}
	ws.queue = ws.queue[:0]
	ws.touchList = ws.touchList[:0]
}

// push enqueues u for recomputation unless it is the destination or
// already queued, and records it in the ever-touched set.
func (ws *Workspace) push(u, dest int) {
	if u == dest || ws.dirty[u] {
		return
	}
	ws.dirty[u] = true
	ws.queue = append(ws.queue, u)
	if !ws.touched[u] {
		ws.touched[u] = true
		ws.touchList = append(ws.touchList, u)
	}
}

// sortedTouched returns a fresh ascending copy of the ever-enqueued set
// (insertion-sort backed: the list is short relative to N by design —
// large frontiers fall back to the sweep solver first).
func (ws *Workspace) sortedTouched() []int {
	out := append([]int(nil), ws.touchList...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// drain runs the worklist to fixpoint (or until maxPops, ≤ 0 meaning
// the default budget). Popping a node rescans its enabled out-arcs
// against live state with the synchronous solver's exact selection loop
// — first arc achieving a minimal candidate — so tie-breaks agree with
// a from-scratch build; a routedness or weight change then dirties the
// node's in-neighbours through the base graph's reverse CSR index
// (disabled, when non-nil, skips masked in-arcs; a nil mask merely
// enqueues tails that will rescan to no change). warm, when non-nil,
// runs the drain over the sparse lazy overlay: popped nodes and scanned
// out-neighbours are materialized from the previous fixpoint on first
// access instead of having been bulk-loaded.
func (ws *Workspace) drain(eng exec.Algebra, g *graph.Graph, disabled []bool, dest, maxPops int, warm WarmStart) (pops int, relaxations uint64, converged bool) {
	if maxPops <= 0 {
		maxPops = defaultPopBudget(g.N)
	}
	rev := g.RevIn()
	arcs := g.Arcs
	routed, w, nextHop := ws.routed, ws.w, ws.nextHop
	head := 0
	for head < len(ws.queue) {
		if pops >= maxPops {
			return pops, relaxations, false
		}
		// Compact the spent prefix so queue growth tracks the number of
		// pending nodes, not total enqueues.
		if head > 1024 && head*2 > len(ws.queue) {
			n := copy(ws.queue, ws.queue[head:])
			ws.queue = ws.queue[:n]
			head = 0
		}
		u := ws.queue[head]
		head++
		ws.dirty[u] = false
		pops++
		if warm != nil {
			ws.ensure(u, warm)
		}
		bestArc := -1
		var best int32
		for _, ai := range g.Out(u) {
			v := arcs[ai].To
			if warm != nil {
				ws.ensure(v, warm)
			}
			if !routed[v] {
				continue
			}
			relaxations++
			cand := eng.Apply(arcs[ai].Label, w[v])
			if bestArc < 0 || eng.Lt(cand, best) {
				bestArc, best = ai, cand
			}
		}
		changed := false
		if bestArc < 0 {
			if routed[u] {
				routed[u] = false
				nextHop[u] = -1
				changed = true
			}
		} else {
			if !routed[u] || w[u] != best {
				changed = true
			}
			routed[u] = true
			w[u] = best
			nextHop[u] = arcs[bestArc].To
		}
		if !changed {
			continue
		}
		for _, ai := range rev.In(u) {
			if disabled != nil && int(ai) < len(disabled) && disabled[ai] {
				continue
			}
			ws.push(arcs[ai].From, dest)
		}
	}
	return pops, relaxations, true
}
