package solve

import (
	"math/rand"
	"testing"

	"metarouting/internal/graph"
)

// dagRandom builds a random DAG (arcs only from higher to lower node
// ids), so walks coincide with simple paths and KBest has exact
// brute-force ground truth.
func dagRandom(r *rand.Rand, n int, p float64, labels int) *graph.Graph {
	var arcs []graph.Arc
	for u := 1; u < n; u++ {
		arcs = append(arcs, graph.Arc{From: u, To: r.Intn(u), Label: r.Intn(labels)})
		for v := 0; v < u; v++ {
			if r.Float64() < p {
				dup := false
				for _, a := range arcs {
					if a.From == u && a.To == v {
						dup = true
					}
				}
				if !dup {
					arcs = append(arcs, graph.Arc{From: u, To: v, Label: r.Intn(labels)})
				}
			}
		}
	}
	return graph.MustNew(n, arcs)
}

func TestKBestMatchesBruteForceOnDAGs(t *testing.T) {
	a := alg(t, "delay(255,4)")
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		g := dagRandom(r, 7, 0.4, 4)
		for _, k := range []int{1, 2, 4} {
			res := KBest(a, g, 0, 0, k, 0)
			if !res.Converged {
				t.Fatalf("trial %d k=%d: must converge on a DAG", trial, k)
			}
			truth := KBestBruteForce(a, g, 0, 0, k)
			for u := 0; u < g.N; u++ {
				if len(res.Weights[u]) != len(truth[u]) {
					t.Fatalf("trial %d k=%d node %d: %v vs truth %v", trial, k, u, res.Weights[u], truth[u])
				}
				for i := range truth[u] {
					if res.Weights[u][i] != truth[u][i] {
						t.Fatalf("trial %d k=%d node %d: %v vs truth %v", trial, k, u, res.Weights[u], truth[u])
					}
				}
			}
		}
	}
}

func TestKBestK1MatchesDijkstra(t *testing.T) {
	a := alg(t, "delay(255,3)")
	r := rand.New(rand.NewSource(14))
	for trial := 0; trial < 10; trial++ {
		g := graph.Random(r, 8, 0.3, graph.UniformLabels(3))
		kb := KBest(a, g, 0, 0, 1, 0)
		dj := Dijkstra(a, g, 0, 0)
		for u := 0; u < g.N; u++ {
			hasKB := len(kb.Weights[u]) > 0
			if hasKB != dj.Routed[u] {
				t.Fatalf("trial %d node %d: reachability differs", trial, u)
			}
			if hasKB && kb.Weights[u][0] != dj.Weights[u] {
				t.Fatalf("trial %d node %d: k=1 best %v vs dijkstra %v", trial, u, kb.Weights[u][0], dj.Weights[u])
			}
		}
	}
}

func TestKBestOrdering(t *testing.T) {
	a := alg(t, "delay(255,4)")
	r := rand.New(rand.NewSource(15))
	g := dagRandom(r, 8, 0.5, 4)
	res := KBest(a, g, 0, 0, 5, 0)
	for u := 0; u < g.N; u++ {
		ws := res.Weights[u]
		for i := 1; i < len(ws); i++ {
			if a.Ord.Lt(ws[i], ws[i-1]) {
				t.Fatalf("node %d: weights out of order: %v", u, ws)
			}
		}
	}
}

func TestKBestDuplicateWeightsFromDistinctPaths(t *testing.T) {
	a := alg(t, "delay(255,4)")
	// Diamond with equal-cost branches: 2 →(+1) 1 →(+1) 0 and 2 →(+2) 0.
	g := graph.MustNew(3, []graph.Arc{
		{From: 1, To: 0, Label: 0}, // +1
		{From: 2, To: 1, Label: 0}, // +1
		{From: 2, To: 0, Label: 1}, // +2
	})
	res := KBest(a, g, 0, 0, 2, 0)
	if len(res.Weights[2]) != 2 || res.Weights[2][0] != 2 || res.Weights[2][1] != 2 {
		t.Fatalf("two distinct weight-2 routes expected: %v", res.Weights[2])
	}
}

func TestKBestPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := alg(t, "delay(8,1)")
	KBest(a, graph.MustNew(2, []graph.Arc{{From: 1, To: 0, Label: 0}}), 0, 0, 0, 0)
}
