package solve

import (
	"fmt"
	"math/rand"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/prop"
	"metarouting/internal/value"
)

// deltaExpr draws a random finite algebra expression (small, so
// composite carriers stay under the compile cap).
func deltaExpr(r *rand.Rand, depth int) string {
	bases := []string{"delay(8,2)", "delay(16,3)", "bw(4)", "bw(8)", "hops(8)", "lp(3)"}
	if depth <= 0 || r.Intn(3) == 0 {
		return bases[r.Intn(len(bases))]
	}
	switch r.Intn(4) {
	case 0:
		return fmt.Sprintf("lex(%s, %s)", deltaExpr(r, depth-1), deltaExpr(r, depth-1))
	case 1:
		return fmt.Sprintf("scoped(%s, %s)", deltaExpr(r, depth-1), deltaExpr(r, depth-1))
	case 2:
		return fmt.Sprintf("addtop(%s)", deltaExpr(r, depth-1))
	default:
		return fmt.Sprintf("left(%s)", deltaExpr(r, depth-1))
	}
}

// deltaTopo draws one of the acceptance criterion's topology families:
// GNP random, ring, grid.
func deltaTopo(r *rand.Rand, labels int) *graph.Graph {
	switch r.Intn(3) {
	case 0:
		return graph.Random(r, 5+r.Intn(8), 0.3, graph.UniformLabels(labels))
	case 1:
		return graph.Ring(r, 5+r.Intn(8), graph.UniformLabels(labels))
	default:
		return graph.Grid(r, 2+r.Intn(3), 2+r.Intn(3), graph.UniformLabels(labels))
	}
}

// deltaBackends builds both execution backends for an algebra.
func deltaBackends(t *testing.T, a *core.Algebra, origin value.V) map[string]exec.Algebra {
	t.Helper()
	out := make(map[string]exec.Algebra)
	dyn, err := exec.New(a.OT, exec.ModeDynamic, origin)
	if err != nil {
		t.Fatal(err)
	}
	out["dynamic"] = dyn
	if a.OT.Finite() && a.OT.Carrier().Size() <= 4000 {
		comp, err := exec.New(a.OT, exec.ModeCompiled, origin)
		if err != nil {
			t.Fatal(err)
		}
		out["compiled"] = comp
	}
	return out
}

// warmStartable mirrors rib.DeltaLicensed without importing rib: the
// property gate under which the drain's fixpoint is provably the
// from-scratch fixpoint.
func warmStartable(a *core.Algebra) bool {
	return a.OT.Props.Holds(prop.MLeft) || a.OT.Props.Holds(prop.ILeft)
}

func sameSolution(t *testing.T, label string, got, want *Result) {
	t.Helper()
	for u := range want.Routed {
		if got.Routed[u] != want.Routed[u] {
			t.Fatalf("%s: node %d routedness %v, want %v", label, u, got.Routed[u], want.Routed[u])
		}
		if !want.Routed[u] {
			continue
		}
		if got.Weights[u] != want.Weights[u] {
			t.Fatalf("%s: node %d weight %v, want %v", label, u, got.Weights[u], want.Weights[u])
		}
		if got.NextHop[u] != want.NextHop[u] {
			t.Fatalf("%s: node %d next hop %d, want %d", label, u, got.NextHop[u], want.NextHop[u])
		}
	}
}

// TestWorklistMatchesBellmanFord: for warm-startable algebras the
// worklist solver converges to a solution bit-identical to the
// synchronous sweep, on both backends.
func TestWorklistMatchesBellmanFord(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	licensed := 0
	for trial := 0; trial < 60; trial++ {
		src := deltaExpr(r, 2)
		a, err := core.InferString(src)
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, src, err)
		}
		if !a.OT.Finite() || a.OT.Carrier().Size() > 4000 {
			continue
		}
		g := deltaTopo(r, a.OT.F.Size())
		origin := a.OT.Carrier().Elems[r.Intn(a.OT.Carrier().Size())]
		dest := r.Intn(g.N)
		for name, eng := range deltaBackends(t, a, origin) {
			bf := BellmanFordEngine(eng, g, dest, origin, 0)
			wl := WorklistEngine(eng, g, dest, origin, 0)
			if warmStartable(a) {
				licensed++
				if !bf.Converged || !wl.Converged {
					t.Fatalf("trial %d (%s/%s): licensed algebra must converge (bf=%v wl=%v)",
						trial, src, name, bf.Converged, wl.Converged)
				}
			}
			if bf.Converged && wl.Converged {
				sameSolution(t, fmt.Sprintf("trial %d (%s/%s)", trial, src, name), wl, bf)
			}
		}
	}
	if licensed < 10 {
		t.Fatalf("only %d licensed comparisons ran — the trial mix lost its teeth", licensed)
	}
}

// TestDeltaMatchesFromScratch: chains of random arc toggles re-solved
// with BellmanFordDelta stay bit-identical to from-scratch sweeps on
// the mutated view, on both backends, with the previous delta result
// feeding the next step — exactly the serve layer's usage pattern.
func TestDeltaMatchesFromScratch(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	used, licensed := 0, 0
	for trial := 0; trial < 50; trial++ {
		src := deltaExpr(r, 2)
		a, err := core.InferString(src)
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, src, err)
		}
		if !a.OT.Finite() || a.OT.Carrier().Size() > 4000 || !warmStartable(a) {
			continue
		}
		licensed++
		g := deltaTopo(r, a.OT.F.Size())
		origin := a.OT.Carrier().Elems[r.Intn(a.OT.Carrier().Size())]
		dest := r.Intn(g.N)
		for name, eng := range deltaBackends(t, a, origin) {
			ws := NewWorkspace()
			disabled := make([]bool, len(g.Arcs))
			view := g.MaskArcs(disabled)
			prev := ws.BellmanFord(eng, view, dest, origin, 0)
			for step := 0; step < 6; step++ {
				var toggles []ArcToggle
				for k := 0; k < 1+r.Intn(3); k++ {
					ai := r.Intn(len(g.Arcs))
					disabled[ai] = !disabled[ai]
					toggles = append(toggles, ArcToggle{Arc: ai, Down: disabled[ai]})
				}
				view = g.MaskArcs(disabled)
				got, st := ws.BellmanFordDelta(eng, view, disabled, dest, origin, prev, toggles, 0)
				want := NewWorkspace().BellmanFord(eng, view, dest, origin, 0)
				label := fmt.Sprintf("trial %d step %d (%s/%s, delta=%v)", trial, step, src, name, st.UsedDelta)
				if got.Converged != want.Converged {
					t.Fatalf("%s: converged %v, want %v", label, got.Converged, want.Converged)
				}
				sameSolution(t, label, got, want)
				if st.UsedDelta {
					used++
				}
				prev = got
			}
		}
	}
	if licensed < 8 || used < 20 {
		t.Fatalf("mix lost its teeth: %d licensed trials, %d delta solves", licensed, used)
	}
}

// TestDeltaFallbacks pins the three fallback triggers: unusable warm
// start, oversized frontier, and correctness of the from-scratch answer
// either way.
func TestDeltaFallbacks(t *testing.T) {
	a, err := core.InferString("delay(16,3)")
	if err != nil {
		t.Fatal(err)
	}
	eng := exec.For(a.OT, 0)
	// A directed chain n-1 → … → 1 → 0: every node forwards through arc
	// 1→0, so failing it invalidates the whole graph.
	n := 12
	var arcs []graph.Arc
	for u := 1; u < n; u++ {
		arcs = append(arcs, graph.Arc{From: u, To: u - 1, Label: 1})
	}
	g := graph.MustNew(n, arcs)
	ws := NewWorkspace()
	prev := ws.BellmanFord(eng, g, 0, 0, 0)

	// Nil previous result.
	res, st := ws.BellmanFordDelta(eng, g, nil, 0, 0, nil, nil, 0)
	if st.UsedDelta || !res.Converged {
		t.Fatalf("nil prev must fall back: %+v", st)
	}
	// Unconverged previous result.
	bad := *prev
	bad.Converged = false
	if _, st = ws.BellmanFordDelta(eng, g, nil, 0, 0, &bad, nil, 0); st.UsedDelta {
		t.Fatal("unconverged prev must fall back")
	}
	// Whole-graph frontier: failing arc 0 (1→0) invalidates all n-1
	// routed nodes, crossing the half-the-nodes cutover.
	disabled := make([]bool, len(arcs))
	disabled[0] = true
	view := g.MaskArcs(disabled)
	res, st = ws.BellmanFordDelta(eng, view, disabled, 0, 0, prev, []ArcToggle{{Arc: 0, Down: true}}, 0)
	if st.UsedDelta {
		t.Fatalf("frontier %d of %d nodes must cut over to from-scratch", st.Frontier, n)
	}
	if st.Frontier != n-1 {
		t.Fatalf("frontier %d, want %d", st.Frontier, n-1)
	}
	for u := 1; u < n; u++ {
		if res.Routed[u] {
			t.Fatalf("node %d must be unrouted after the chain broke", u)
		}
	}
	// A one-arc repair at the far end stays on the delta path.
	disabled[0] = false
	view = g.MaskArcs(disabled)
	prev = ws.BellmanFord(eng, view, 0, 0, 0)
	disabled[len(arcs)-1] = true
	view = g.MaskArcs(disabled)
	res, st = ws.BellmanFordDelta(eng, view, disabled, 0, 0, prev, []ArcToggle{{Arc: len(arcs) - 1, Down: true}}, 0)
	if !st.UsedDelta || st.Frontier != 1 {
		t.Fatalf("tail failure must delta with frontier 1: %+v", st)
	}
	if res.Routed[n-1] {
		t.Fatal("tail node must lose its route")
	}
}
