package solve

import (
	"math/rand"
	"testing"

	"metarouting/internal/baselib"
	"metarouting/internal/core"
	"metarouting/internal/graph"
	"metarouting/internal/order"
	"metarouting/internal/ost"
	"metarouting/internal/quadrant"
	"metarouting/internal/value"
)

// alg compiles a metarouting expression for solver tests.
func alg(t testing.TB, src string) *ost.OrderTransform {
	t.Helper()
	a, err := core.InferString(src)
	if err != nil {
		t.Fatal(err)
	}
	return a.OT
}

// lineGraph is 3 → 2 → 1 → 0 with an expensive shortcut 3 → 0.
// Labels index delay steps: label d-1 = "+d".
func lineGraph() *graph.Graph {
	return graph.MustNew(4, []graph.Arc{
		{From: 1, To: 0, Label: 0}, // +1
		{From: 2, To: 1, Label: 0}, // +1
		{From: 3, To: 2, Label: 0}, // +1
		{From: 3, To: 0, Label: 3}, // +4
	})
}

func TestDijkstraShortestPath(t *testing.T) {
	a := alg(t, "delay(32,4)")
	g := lineGraph()
	res := Dijkstra(a, g, 0, 0)
	if !res.Converged {
		t.Fatal("Dijkstra must converge")
	}
	want := []int{0, 1, 2, 3}
	for u, w := range want {
		if !res.Routed[u] || res.Weights[u] != w {
			t.Fatalf("node %d: weight %v, want %d", u, res.Weights[u], w)
		}
	}
	// Node 3 must prefer the 3-hop path (weight 3) over the +4 shortcut.
	if res.NextHop[3] != 2 {
		t.Fatalf("node 3 next hop = %d, want 2", res.NextHop[3])
	}
	if ok, why := VerifyGlobal(a, g, 0, 0, res); !ok {
		t.Fatalf("not globally optimal: %s", why)
	}
	if ok, why := VerifyLocal(a, g, 0, 0, res); !ok {
		t.Fatalf("not locally optimal: %s", why)
	}
	if !res.LoopFree() {
		t.Fatal("forwarding loop")
	}
}

func TestBellmanFordMatchesDijkstraOnMonotone(t *testing.T) {
	a := alg(t, "delay(64,3)")
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		g := graph.Random(r, 9, 0.3, graph.UniformLabels(3))
		d := Dijkstra(a, g, 0, 0)
		b := BellmanFord(a, g, 0, 0, 0)
		if !b.Converged {
			t.Fatal("Bellman–Ford must converge on an increasing algebra")
		}
		for u := 0; u < g.N; u++ {
			if d.Routed[u] != b.Routed[u] {
				t.Fatalf("trial %d node %d: routedness differs", trial, u)
			}
			if d.Routed[u] && !a.Ord.Equiv(d.Weights[u], b.Weights[u]) {
				t.Fatalf("trial %d node %d: %v vs %v", trial, u, d.Weights[u], b.Weights[u])
			}
		}
	}
}

func TestDijkstraGloballyOptimalOnRandomGraphs(t *testing.T) {
	a := alg(t, "delay(128,4)")
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		g := graph.Random(r, 8, 0.3, graph.UniformLabels(4))
		res := Dijkstra(a, g, 0, 0)
		if ok, why := VerifyGlobal(a, g, 0, 0, res); !ok {
			t.Fatalf("trial %d: %s", trial, why)
		}
	}
}

// TestWidestPathDijkstra: bandwidth is monotone over a total order, so
// generalized Dijkstra finds globally optimal (widest) paths. The origin
// is the destination's "infinite" bandwidth = cap.
func TestWidestPathDijkstra(t *testing.T) {
	a := alg(t, "bw(8)")
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		g := graph.Random(r, 8, 0.3, graph.UniformLabels(9))
		res := Dijkstra(a, g, 0, 8)
		if ok, why := VerifyGlobal(a, g, 0, 8, res); !ok {
			t.Fatalf("trial %d: %s", trial, why)
		}
	}
}

// TestLexBandwidthDelayNotGloballyOptimal reproduces the paper's central
// negative example in the network: bw ×lex delay is not monotone, and
// Dijkstra can return non-optimal routes. We search a few topologies for
// a certificate of suboptimality.
func TestLexBandwidthDelayNotGloballyOptimal(t *testing.T) {
	a := alg(t, "lex(bw(4), delay(16,4))")
	origin := value.Pair{A: 4, B: 0}
	r := rand.New(rand.NewSource(5))
	foundViolation := false
	for trial := 0; trial < 200 && !foundViolation; trial++ {
		g := graph.Random(r, 7, 0.35, graph.UniformLabels(16))
		res := Dijkstra(a, g, 0, origin)
		if ok, _ := VerifyGlobal(a, g, 0, origin, res); !ok {
			foundViolation = true
		}
	}
	if !foundViolation {
		t.Fatal("expected to find a topology where Dijkstra misses the global optimum for bw×delay")
	}
}

// TestScopedBandwidthDelayGloballyOptimal: the scoped product is monotone
// (Theorem 6), so the fixpoint iteration converges to weights dominating
// every path — the M-only global-optimality guarantee. (Dijkstra is NOT
// applicable here: ⊙ is not nondecreasing, because inter-region arcs
// originate fresh second components that can improve a route; see
// TestScopedNotNDSoDijkstraMisses.)
func TestScopedBandwidthDelayGloballyOptimal(t *testing.T) {
	a := alg(t, "scoped(bw(4), delay(16,4))")
	origin := value.Pair{A: 4, B: 0}
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		g := graph.Random(r, 7, 0.35, graph.UniformLabels(len(a.F.Fns)))
		res := BellmanFord(a, g, 0, origin, 4*g.N)
		if !res.Converged {
			t.Fatalf("trial %d: fixpoint iteration must converge on a monotone algebra", trial)
		}
		if ok, why := VerifyDominates(a, g, 0, origin, res); !ok {
			t.Fatalf("trial %d: scoped fixpoint must dominate every path: %s", trial, why)
		}
	}
}

// TestScopedNotNDSoDijkstraMisses documents why M alone does not license
// Dijkstra: the greedy settle order assumes extensions never improve
// (ND). We search for a topology where Dijkstra's answer fails to
// dominate some path while the fixpoint's answer succeeds.
func TestScopedNotNDSoDijkstraMisses(t *testing.T) {
	a := alg(t, "scoped(bw(4), delay(16,4))")
	origin := value.Pair{A: 4, B: 0}
	r := rand.New(rand.NewSource(5))
	found := false
	for trial := 0; trial < 200 && !found; trial++ {
		g := graph.Random(r, 7, 0.35, graph.UniformLabels(len(a.F.Fns)))
		d := Dijkstra(a, g, 0, origin)
		if ok, _ := VerifyDominates(a, g, 0, origin, d); !ok {
			found = true
		}
	}
	if !found {
		t.Fatal("expected to find a topology where Dijkstra under-performs on the non-ND scoped product")
	}
}

func TestUnreachableNodes(t *testing.T) {
	a := alg(t, "delay(16,2)")
	g := graph.MustNew(3, []graph.Arc{{From: 1, To: 0, Label: 0}}) // node 2 isolated
	res := Dijkstra(a, g, 0, 0)
	if res.Routed[2] {
		t.Fatal("isolated node must be unrouted")
	}
	if _, ok := res.Route(2); ok {
		t.Fatal("Route on unrouted node must fail")
	}
	b := BellmanFord(a, g, 0, 0, 0)
	if b.Routed[2] || !b.Converged {
		t.Fatal("Bellman–Ford must agree and converge")
	}
	if ok, why := VerifyGlobal(a, g, 0, 0, res); !ok {
		t.Fatal(why)
	}
}

func TestRouteReconstruction(t *testing.T) {
	a := alg(t, "delay(32,4)")
	g := lineGraph()
	res := Dijkstra(a, g, 0, 0)
	p, ok := res.Route(3)
	if !ok {
		t.Fatal("route must exist")
	}
	want := graph.Path{3, 2, 1, 0}
	if len(p) != len(want) {
		t.Fatalf("route = %v", p)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("route = %v, want %v", p, want)
		}
	}
}

func TestVerifyLocalCatchesInstability(t *testing.T) {
	a := alg(t, "delay(32,4)")
	g := lineGraph()
	res := Dijkstra(a, g, 0, 0)
	// Corrupt node 3: take the expensive shortcut although a better
	// route exists.
	res.NextHop[3] = 0
	res.Weights[3] = 4
	if ok, _ := VerifyLocal(a, g, 0, 0, res); ok {
		t.Fatal("instability must be detected")
	}
}

func TestVerifyGlobalCatchesWrongWeight(t *testing.T) {
	a := alg(t, "delay(32,4)")
	g := lineGraph()
	res := Dijkstra(a, g, 0, 0)
	res.Weights[2] = 9
	if ok, _ := VerifyGlobal(a, g, 0, 0, res); ok {
		t.Fatal("wrong weight must be detected")
	}
}

func TestBruteForceMinSets(t *testing.T) {
	a := alg(t, "delay(32,4)")
	g := lineGraph()
	truth := BruteForce(a, g, 0, 0, 0)
	if len(truth[3]) != 1 || truth[3][0] != 3 {
		t.Fatalf("truth[3] = %v", truth[3])
	}
	if len(truth[0]) != 1 || truth[0][0] != 0 {
		t.Fatalf("truth[0] = %v", truth[0])
	}
}

// TestFixpointShortestPaths: the algebraic solver over the Cayley
// transform of min-plus reproduces Dijkstra's weights.
func TestFixpointShortestPaths(t *testing.T) {
	b := baselib.BoundedDistSGT(64)
	g := lineGraph()
	// Labels: delay test graph uses labels 0..3 = steps +1..+4; the
	// bounded-dist function set is indexed by y: f_y = +y, so relabel.
	arcs := make([]graph.Arc, len(g.Arcs))
	for i, a := range g.Arcs {
		arcs[i] = graph.Arc{From: a.From, To: a.To, Label: a.Label + 1}
	}
	g2 := graph.MustNew(g.N, arcs)
	res := Fixpoint(b, g2, 0, 0, 0)
	if !res.Converged {
		t.Fatal("fixpoint must converge")
	}
	want := []int{0, 1, 2, 3}
	for u, w := range want {
		if !res.Routed[u] || res.Weights[u] != w {
			t.Fatalf("node %d: %v, want %d", u, res.Weights[u], w)
		}
	}
}

// TestFixpointMinSetMultipath: the min-set transform computes Pareto
// sets — for the lex(bw, delay) algebra the ground-truth optima appear as
// set elements even though the plain solvers cannot find them.
func TestFixpointMinSetMultipath(t *testing.T) {
	a := alg(t, "lex(bw(2), delay(4,2))")
	reg := quadrant.NewSetRegistry()
	ms := quadrant.MinSetTransform(a, reg)
	g := graph.MustNew(3, []graph.Arc{
		// Two routes from 2 to 0: wide-slow vs narrow-fast. Function
		// indexing follows fn.Product over (bw caps 0..2) × (delay +1,+2):
		// label = capIdx*2 + (step-1).
		{From: 2, To: 1, Label: 2*2 + 0}, // cap2, +1
		{From: 1, To: 0, Label: 2*2 + 1}, // cap2, +2
		{From: 2, To: 0, Label: 1*2 + 0}, // cap1, +1
	})
	origin := reg.Intern([]value.V{value.Pair{A: 2, B: 0}})
	res := Fixpoint(ms, g, 0, origin, 0)
	if !res.Converged {
		t.Fatal("min-set fixpoint must converge")
	}
	got := reg.Members(res.Weights[2].(quadrant.VSet))
	if len(got) != 1 {
		// Under the lex order one of the two is strictly better; the
		// min-set keeps exactly the better one: (2,3) beats (1,1)?
		// lex(bw≥, delay≤): 2 > 1 in bandwidth ⇒ (2,3) wins.
		t.Fatalf("want singleton optimum, got %v", got)
	}
	if got[0] != (value.Pair{A: 2, B: 3}) {
		t.Fatalf("optimum = %v, want (2, 3)", got[0])
	}
}

// TestParetoRoutingLazyMinSet: the lazy min-set transform computes full
// Pareto route sets under a genuinely partial order (pointwise
// delay × inverse-bandwidth) on carriers whose antichain lattice is far
// too large to enumerate — verified against brute-force Pareto fronts.
func TestParetoRoutingLazyMinSet(t *testing.T) {
	// Pointwise (not lexicographic!) order over delay ≤ and bw ≥:
	// incomparable weights are both kept.
	a := alg(t, "lex(delay(64,4), bw(16))")
	pointwise := ost.New("pareto",
		orderPointwise(a), a.F)
	reg := quadrant.NewSetRegistry()
	lazy := quadrant.MinSetTransformLazy(pointwise, reg)

	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		g := graph.Random(r, 6, 0.35, graph.UniformLabels(len(a.F.Fns)))
		origin := value.Pair{A: 0, B: 16}
		res := Fixpoint(lazy, g, 0, reg.Intern([]value.V{origin}), 4*g.N)
		if !res.Converged {
			t.Fatalf("trial %d: Pareto fixpoint must converge", trial)
		}
		truth := BruteForce(pointwise, g, 0, origin, 0)
		for u := 0; u < g.N; u++ {
			var got []value.V
			if res.Routed[u] {
				got = reg.Members(res.Weights[u].(quadrant.VSet))
			}
			// The fixpoint minimizes over walks; under a nondecreasing
			// pointwise order walks cannot beat simple paths, so the
			// fronts must agree as sets.
			want := reg.Intern(truth[u])
			if reg.Intern(got) != want {
				t.Fatalf("trial %d node %d: front %v vs truth %v", trial, u,
					value.FormatSet(got), value.FormatSet(truth[u]))
			}
		}
	}
}

// orderPointwise rebuilds the componentwise order over the same pair
// carrier the lex algebra uses.
func orderPointwise(a *ost.OrderTransform) *order.Preorder {
	return order.New("pw", a.Carrier(), func(x, y value.V) bool {
		p, q := x.(value.Pair), y.(value.Pair)
		return p.A.(int) <= q.A.(int) && p.B.(int) >= q.B.(int)
	})
}

// TestGaussSeidelMatchesJacobi: both iterations reach the same fixpoint
// on monotone algebras, with Gauss–Seidel needing no more rounds.
func TestGaussSeidelMatchesJacobi(t *testing.T) {
	a := alg(t, "delay(255,3)")
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 15; trial++ {
		g := graph.Random(r, 10, 0.3, graph.UniformLabels(3))
		j := BellmanFord(a, g, 0, 0, 0)
		gs := GaussSeidel(a, g, 0, 0, 0)
		if !j.Converged || !gs.Converged {
			t.Fatalf("trial %d: both must converge", trial)
		}
		if gs.Rounds > j.Rounds {
			t.Fatalf("trial %d: Gauss–Seidel took more rounds (%d) than Jacobi (%d)",
				trial, gs.Rounds, j.Rounds)
		}
		for u := 0; u < g.N; u++ {
			if j.Routed[u] != gs.Routed[u] || (j.Routed[u] && j.Weights[u] != gs.Weights[u]) {
				t.Fatalf("trial %d node %d: fixpoints differ", trial, u)
			}
		}
	}
}
