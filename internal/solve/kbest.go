package solve

import (
	"sort"

	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/ost"
	"metarouting/internal/value"
)

// KBestResult holds, per node, the k best route weights to the
// destination in preference order (best first).
type KBestResult struct {
	// Dest is the destination node.
	Dest int
	// Weights[u] lists up to k weights, best first.
	Weights [][]value.V
	// Rounds counts fixpoint iterations.
	Rounds int
	// Converged reports whether a fixpoint was reached.
	Converged bool
}

// KBest computes the k best route weights from every node to dest by
// fixpoint iteration over k-truncated weight lists — §VI's hope that
// "problems like finding k-best paths can be tackled using the reduction
// idea", realized: the k-min truncation is a Wongseelashote reduction on
// any semigroup monotone over a total preorder (KBestReduction packages
// it for law checking).
//
// The algebra's preorder must be total (k-min needs to sort). For
// increasing algebras the computed weights are the k best *simple-path*
// weights on small graphs (walks cannot beat paths); in general they are
// walk weights, like every fixpoint method. maxRounds ≤ 0 picks a
// default budget; duplicate weights arising from distinct paths are kept
// up to multiplicity k.
//
// The execution backend is chosen by exec.For; use KBestEngine to pin
// one explicitly.
func KBest(alg *ost.OrderTransform, g *graph.Graph, dest int, origin value.V, k, maxRounds int) *KBestResult {
	return KBestEngine(exec.For(alg, origin), g, dest, origin, k, maxRounds)
}

// kMin sorts candidates by the (total) preorder, stably, and keeps the
// first k. Duplicates count toward k (they represent distinct routes).
func kMin(alg *ost.OrderTransform, cands []value.V, k int) []value.V {
	sort.SliceStable(cands, func(i, j int) bool {
		return alg.Ord.Lt(cands[i], cands[j])
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]value.V, len(cands))
	copy(out, cands)
	return out
}

// KBestBruteForce returns the k smallest simple-path weights from each
// node to dest, by exhaustive enumeration — ground truth for KBest on
// small graphs.
func KBestBruteForce(alg *ost.OrderTransform, g *graph.Graph, dest int, origin value.V, k int) [][]value.V {
	out := make([][]value.V, g.N)
	for u := 0; u < g.N; u++ {
		if u == dest {
			out[u] = []value.V{origin}
			continue
		}
		var weights []value.V
		for _, path := range g.SimplePaths(u, dest, 0) {
			w := origin
			for i := len(path) - 1; i >= 0; i-- {
				w = arcFn(alg, g, path[i])(w)
			}
			weights = append(weights, w)
		}
		out[u] = kMin(alg, weights, k)
	}
	return out
}
