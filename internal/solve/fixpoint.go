package solve

import (
	"metarouting/internal/graph"
	"metarouting/internal/sgt"
	"metarouting/internal/value"
)

// FixpointResult is the solution of the algebraic iteration
// x ← A(x) ⊕ b over a semigroup transform.
type FixpointResult struct {
	// Dest is the destination node.
	Dest int
	// Routed marks nodes whose weight is defined.
	Routed []bool
	// Weights holds the ⊕-summarized weight per node.
	Weights []value.V
	// Rounds counts iterations performed.
	Rounds int
	// Converged reports whether a fixpoint was reached.
	Converged bool
}

// Fixpoint solves the single-destination routing equations over a
// semigroup transform (S, ⊕, F):
//
//	x_dest = origin
//	x_u    = ⊕ { f_(u,v)(x_v) : arcs (u,v) }       (u ≠ dest)
//
// by Jacobi iteration from the origin, stopping at a fixpoint or after
// maxRounds (≤ 0 means 2·N+4). This is the Gondran–Minoux style algebraic
// path algorithm; with the min-set transform of internal/quadrant it
// computes the full set of Pareto-optimal weights under a partial order.
func Fixpoint(alg *sgt.SemigroupTransform, g *graph.Graph, dest int, origin value.V, maxRounds int) *FixpointResult {
	if maxRounds <= 0 {
		maxRounds = 2*g.N + 4
	}
	res := &FixpointResult{
		Dest:    dest,
		Routed:  make([]bool, g.N),
		Weights: make([]value.V, g.N),
	}
	res.Routed[dest] = true
	res.Weights[dest] = origin
	for round := 1; round <= maxRounds; round++ {
		prevW := append([]value.V(nil), res.Weights...)
		prevR := append([]bool(nil), res.Routed...)
		changed := false
		for u := 0; u < g.N; u++ {
			if u == dest {
				continue
			}
			var acc value.V
			have := false
			for _, ai := range g.Out(u) {
				v := g.Arcs[ai].To
				if !prevR[v] {
					continue
				}
				cand := alg.F.Fns[g.Arcs[ai].Label].Apply(prevW[v])
				if !have {
					acc, have = cand, true
				} else {
					acc = alg.Add.Op(acc, cand)
				}
			}
			if !have {
				if res.Routed[u] {
					res.Routed[u] = false
					changed = true
				}
				continue
			}
			if !res.Routed[u] || res.Weights[u] != acc {
				res.Routed[u] = true
				res.Weights[u] = acc
				changed = true
			}
		}
		res.Rounds = round
		if !changed {
			res.Converged = true
			return res
		}
	}
	res.Converged = false
	return res
}
