package solve

import (
	"metarouting/internal/exec"
	"metarouting/internal/graph"
)

// This file holds the O(frontier) side of the delta solver: epoch-stamped
// node sets (so per-run state never needs an O(N) clear), a lazy
// warm-start overlay that materializes previous-fixpoint state only for
// nodes the drain actually visits, and the forward-chain verifier that
// certifies a fixpoint as "clean" — every routed node's primary next-hop
// chain reaches the destination. Cleanliness is what licenses the sparse
// path: on a clean warm start the dense path's ⊤-plateau purge is
// provably a no-op (the purge invalidates exactly the routed nodes
// outside the dest-rooted forwarding tree, and a clean fixpoint has
// none), so skipping it — and with it every O(N) pass of the dense warm
// start — leaves the result bit-identical.

// resetEpochSet readies an epoch-stamped set for n nodes: membership is
// arr[u] == epoch. A normal reset is one integer bump; growth and epoch
// wraparound fall back to a zeroed array. Clearing on wraparound runs at
// full capacity so a later regrowth cannot resurrect stale members.
func resetEpochSet(arr []uint32, epoch uint32, n int) ([]uint32, uint32) {
	if cap(arr) < n {
		return make([]uint32, n), 1
	}
	arr = arr[:n]
	epoch++
	if epoch == 0 {
		full := arr[:cap(arr)]
		for i := range full {
			full[i] = 0
		}
		epoch = 1
	}
	return arr, epoch
}

// ResetMarks readies the workspace's reusable node bitmap for an n-node
// pass, dropping every previous mark in O(1). The bitmap is scratch the
// same way the solver buffers are: callers own it between ResetMarks
// calls, and the RIB delta rebuild uses it as its redo set instead of
// allocating a map per rebuild.
func (ws *Workspace) ResetMarks(n int) {
	ws.marks, ws.markEpoch = resetEpochSet(ws.marks, ws.markEpoch, n)
}

// Mark adds node u to the bitmap (ResetMarks must have covered u).
func (ws *Workspace) Mark(u int) { ws.marks[u] = ws.markEpoch }

// Marked reports whether u was marked since the last ResetMarks.
func (ws *Workspace) Marked(u int) bool { return ws.marks[u] == ws.markEpoch }

// loadNode installs one node's state into the solver arrays and records
// it as live in the lazy overlay, so a later ensure cannot clobber it
// with stale warm-start values.
func (ws *Workspace) loadNode(u int, routed bool, w int32, nextHop int) {
	ws.loaded[u] = ws.loadEpoch
	ws.routed[u] = routed
	ws.w[u] = w
	ws.nextHop[u] = nextHop
}

// ensure materializes node u's previous-fixpoint state on first access.
// Every read or write of routed/w/nextHop on the sparse path must be
// preceded by an ensure (or loadNode) for that node — unloaded entries
// hold garbage from earlier runs.
func (ws *Workspace) ensure(u int, warm WarmStart) {
	if ws.loaded[u] == ws.loadEpoch {
		return
	}
	r, w, nh := warm(u)
	ws.loadNode(u, r, w, nh)
}

// sparseReset readies the workspace for a sparse delta drain without any
// O(N) pass: value arrays are sized but not cleared (the loaded overlay
// gates their validity), and worklist scratch is cleared through the
// previous run's touch list — every dirty/touched bit set since the last
// truncation belongs to a node on touchList (push maintains this; an
// aborted drain's leftovers are still touch-listed). Clears run at full
// capacity so a later larger run cannot resurrect stale bits.
func (ws *Workspace) sparseReset(n int) {
	if cap(ws.routed) < n {
		ws.routed = make([]bool, n)
		ws.prevR = make([]bool, n)
		ws.w = make([]int32, n)
		ws.prevW = make([]int32, n)
		ws.nextHop = make([]int, n)
		if ws.Metrics != nil {
			ws.Metrics.Grows.Inc()
		}
	} else if ws.Metrics != nil {
		ws.Metrics.ReuseHits.Inc()
	}
	ws.routed = ws.routed[:n]
	ws.prevR = ws.prevR[:n]
	ws.w = ws.w[:n]
	ws.prevW = ws.prevW[:n]
	ws.nextHop = ws.nextHop[:n]
	if cap(ws.dirty) < n || cap(ws.touched) < n ||
		cap(ws.childHead) < n || cap(ws.childNext) < n {
		// Grow all four together: resetWorklist uses cap(dirty) as its
		// lone grow sentinel, so the buffers must stay in lockstep.
		ws.dirty = make([]bool, n)
		ws.touched = make([]bool, n)
		ws.childHead = make([]int32, n)
		ws.childNext = make([]int32, n)
	} else {
		ws.dirty = ws.dirty[:n]
		ws.touched = ws.touched[:n]
		dirtyFull := ws.dirty[:cap(ws.dirty)]
		touchedFull := ws.touched[:cap(ws.touched)]
		for _, u := range ws.touchList {
			if u < len(dirtyFull) {
				dirtyFull[u] = false
			}
			if u < len(touchedFull) {
				touchedFull[u] = false
			}
		}
	}
	ws.queue = ws.queue[:0]
	ws.touchList = ws.touchList[:0]
	ws.loaded, ws.loadEpoch = resetEpochSet(ws.loaded, ws.loadEpoch, n)
}

// deltaDrainSparse is deltaDrain for a certified-clean warm start. The
// previous forwarding state has no ⊤-plateau loops, so the global tree
// purge is a no-op and is skipped; downed forwarding subtrees are
// discovered through the shared reverse CSR (a node's children in the
// previous tree are exactly the in-neighbours whose next hop is the
// node) instead of a full children index. Work is proportional to the
// frontier and its neighbourhood, never to g.N. Alongside the drain
// itself it guarantees that, on success, every touched node and every
// toggle tail has its full out-neighbourhood materialized — the RIB
// rebuild re-runs ECMP scans at exactly those nodes.
func (ws *Workspace) deltaDrainSparse(eng exec.Algebra, g *graph.Graph, disabled []bool, dest int, warm WarmStart, toggles []ArcToggle, maxPops int) (pops int, relaxations uint64, frontier int, ok bool) {
	rev := g.RevIn()
	arcs := g.Arcs
	stack := ws.stack[:0]
	for _, t := range toggles {
		x := arcs[t.Arc].From
		// Materialize the toggle tail and its out-neighbourhood up front:
		// the RIB layer re-runs the ECMP scan at every toggle tail even
		// when its weight fixpoint does not move.
		if x != dest {
			ws.ensure(x, warm)
		}
		for _, ai := range g.Out(x) {
			ws.ensure(arcs[ai].To, warm)
		}
		if !t.Down {
			continue
		}
		y := arcs[t.Arc].To
		if x == dest || !ws.routed[x] || ws.nextHop[x] != y {
			continue
		}
		// Invalidate the forwarding subtree behind the downed primary
		// arc, walking previous-tree children via reverse arcs.
		stack = append(stack, x)
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if !ws.routed[s] {
				continue
			}
			ws.routed[s] = false
			ws.nextHop[s] = -1
			ws.push(s, dest)
			for _, ai := range rev.In(s) {
				v := arcs[ai].From
				if v == dest {
					continue
				}
				ws.ensure(v, warm)
				if ws.routed[v] && ws.nextHop[v] == s {
					stack = append(stack, v)
				}
			}
		}
	}
	ws.stack = stack
	// Entry-level obligation shared with the dense path: in-neighbours
	// of invalidated nodes rescan so lost ECMP alternatives are
	// re-derived at the RIB layer.
	for i, inval := 0, len(ws.queue); i < inval; i++ {
		for _, ai := range rev.In(ws.queue[i]) {
			if disabled != nil && int(ai) < len(disabled) && disabled[ai] {
				continue
			}
			ws.push(arcs[ai].From, dest)
		}
	}
	for _, t := range toggles {
		if !t.Down && arcs[t.Arc].From != dest {
			ws.push(arcs[t.Arc].From, dest)
		}
	}
	frontier = len(ws.queue)
	if 2*frontier >= g.N {
		return 0, 0, frontier, false
	}
	var converged bool
	pops, relaxations, converged = ws.drain(eng, g, disabled, dest, maxPops, warm)
	if !converged {
		return pops, relaxations, frontier, false
	}
	return pops, relaxations, frontier, true
}

// verifyChain walks u's primary next-hop chain until it reaches the
// destination or an already-verified node, then marks the whole walk
// verified. It fails on a forwarding cycle (walk longer than n) and on a
// routed node forwarding to an unrouted one — either means the fixpoint
// is not a clean dest-rooted tree. warm, when non-nil, materializes
// unvisited nodes from the lazy overlay as the walk crosses them.
func (ws *Workspace) verifyChain(u, n, dest int, warm WarmStart) bool {
	path := ws.vstack[:0]
	defer func() { ws.vstack = path }()
	for u != dest && ws.vmarks[u] != ws.vmarkEpoch {
		if warm != nil {
			ws.ensure(u, warm)
		}
		if !ws.routed[u] {
			return false
		}
		path = append(path, u)
		if len(path) > n {
			return false
		}
		u = ws.nextHop[u]
	}
	for _, v := range path {
		ws.vmarks[v] = ws.vmarkEpoch
	}
	return true
}

// verifyTouched certifies a converged delta fixpoint as clean by walking
// the forwarding chain of every touched routed node. Untouched nodes
// need no walk: starting from a purged (or certified-clean) warm start,
// an untouched node's chain either stays on unchanged previous-tree
// edges all the way to the destination or crosses a touched node, whose
// own walk covers the remainder. Any new forwarding cycle must contain a
// touched node — a cycle of untouched nodes would have existed in the
// clean previous fixpoint — so the restricted walk finds it.
func (ws *Workspace) verifyTouched(n, dest int, warm WarmStart) bool {
	ws.vmarks, ws.vmarkEpoch = resetEpochSet(ws.vmarks, ws.vmarkEpoch, n)
	for _, t := range ws.touchList {
		if !ws.routed[t] {
			continue
		}
		if !ws.verifyChain(t, n, dest, warm) {
			return false
		}
	}
	return true
}

// VerifyForwardTree reports whether a solver result is a clean
// dest-rooted forwarding tree: every routed node's primary next-hop
// chain reaches the destination (no ⊤-plateau loops). raw must be the
// workspace's own live state (the Raw returned by BellmanFordRaw or
// BellmanFordDeltaRaw, before any later solve). The RIB layer stamps
// the verdict on its columns; a clean previous column is what licenses
// the sparse delta path on the next swap.
func (ws *Workspace) VerifyForwardTree(raw Raw) bool {
	n := len(raw.Routed)
	ws.vmarks, ws.vmarkEpoch = resetEpochSet(ws.vmarks, ws.vmarkEpoch, n)
	for u := 0; u < n; u++ {
		if !raw.Routed[u] {
			continue
		}
		if !ws.verifyChain(u, n, raw.Dest, nil) {
			return false
		}
	}
	return true
}
