// Package solve implements the routing algorithms that consume metarouting
// algebras: a generalized Dijkstra for monotone algebras (global optima),
// a synchronous Bellman–Ford iteration (the idealized distance/path-vector
// dynamics, converging to local optima for increasing algebras), an
// algebraic fixpoint solver for semigroup transforms, and brute-force
// ground truth plus optimality verifiers used by the experiments.
//
// All solvers compute routes *toward* a single destination: the
// destination originates a weight, and the weight of a route at node u is
// the composition of arc functions along the path applied to that origin,
// per §II's functional weight model.
package solve

import (
	"fmt"

	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/ost"
	"metarouting/internal/value"
)

// Result is a single-destination routing solution.
type Result struct {
	// Dest is the destination node.
	Dest int
	// Routed marks nodes that hold a route to Dest.
	Routed []bool
	// Weights holds each routed node's route weight.
	Weights []value.V
	// NextHop holds each routed node's forwarding neighbour (-1 at Dest).
	NextHop []int
	// Rounds counts iterations (Bellman–Ford/fixpoint) or settle steps
	// (Dijkstra).
	Rounds int
	// Converged reports whether the solver reached a fixpoint within its
	// round budget. Dijkstra always converges.
	Converged bool
}

// Route reconstructs the node path from u to the destination by following
// next hops; ok is false if u has no route or a forwarding loop is hit.
func (r *Result) Route(u int) (graph.Path, bool) {
	return r.route(u, make([]int, len(r.Routed)), 1)
}

// route is Route against caller-owned loop-detection scratch: a node is
// on the current chain iff seen[node] == stamp, so one slice serves many
// walks without clearing. Results are shared across goroutines via
// snapshots, which is why the scratch lives with the caller rather than
// being cached on r.
func (r *Result) route(u int, seen []int, stamp int) (graph.Path, bool) {
	if !r.Routed[u] {
		return nil, false
	}
	var p graph.Path
	for u != r.Dest {
		if seen[u] == stamp {
			return nil, false // forwarding loop
		}
		seen[u] = stamp
		p = append(p, u)
		u = r.NextHop[u]
		if u < 0 {
			return nil, false
		}
	}
	return append(p, r.Dest), true
}

// LoopFree reports whether every routed node's next-hop chain reaches the
// destination without revisiting a node.
func (r *Result) LoopFree() bool {
	seen := make([]int, len(r.Routed))
	for u := range r.Routed {
		if !r.Routed[u] {
			continue
		}
		if _, ok := r.route(u, seen, u+1); !ok {
			return false
		}
	}
	return true
}

// arcFn resolves an arc's function.
func arcFn(alg *ost.OrderTransform, g *graph.Graph, arcIdx int) func(value.V) value.V {
	return alg.F.Fns[g.Arcs[arcIdx].Label].Apply
}

// Dijkstra computes routes to dest with the generalized Dijkstra
// algorithm: repeatedly settle an unsettled node whose tentative weight is
// minimal under the algebra's preorder, then relax the in-arcs of the
// settled node. For monotone algebras over total preorders the result is
// globally optimal (§II); for non-monotone algebras the result is
// well-defined but carries no optimality guarantee — exactly the
// distinction the experiments probe.
//
// The execution backend is chosen by exec.For: finite algebras run on
// compiled tables, everything else interprets the order transform. Use
// DijkstraEngine to pin a backend explicitly.
func Dijkstra(alg *ost.OrderTransform, g *graph.Graph, dest int, origin value.V) *Result {
	return DijkstraEngine(exec.For(alg, origin), g, dest, origin)
}

// BellmanFord runs the synchronous distributed iteration: in each round
// every node recomputes its best route from its neighbours' previous-round
// routes. This is the idealized dynamics of distance/path-vector
// protocols. It stops at a fixpoint or after maxRounds (≤ 0 means 2·N+4).
// For increasing algebras the fixpoint is a local optimum; non-increasing
// algebras may oscillate forever, which the Converged flag reports.
// The execution backend is chosen by exec.For; use BellmanFordEngine to
// pin one explicitly.
func BellmanFord(alg *ost.OrderTransform, g *graph.Graph, dest int, origin value.V, maxRounds int) *Result {
	return BellmanFordEngine(exec.For(alg, origin), g, dest, origin, maxRounds)
}

// GaussSeidel is BellmanFord with in-place (chaotic relaxation) updates:
// within a round, nodes immediately see the updates of lower-numbered
// nodes. For monotone algebras it converges to the same fixpoint as the
// Jacobi iteration, usually in fewer rounds — the ablation benches
// quantify the gap. maxRounds ≤ 0 picks the same default budget.
// The execution backend is chosen by exec.For; use GaussSeidelEngine to
// pin one explicitly.
func GaussSeidel(alg *ost.OrderTransform, g *graph.Graph, dest int, origin value.V, maxRounds int) *Result {
	return GaussSeidelEngine(exec.For(alg, origin), g, dest, origin, maxRounds)
}

// BruteForce enumerates every simple path from each node to dest (up to
// maxLen hops; ≤ 0 means N-1) and returns, per node, the set of minimal
// path weights under the algebra's preorder — the ground truth for global
// optimality. Exponential; intended for small graphs.
func BruteForce(alg *ost.OrderTransform, g *graph.Graph, dest int, origin value.V, maxLen int) [][]value.V {
	// Resolve each arc's function once — re-deriving the closure through
	// arcFn per path step dominated the inner loop on dense graphs.
	fns := make([]func(value.V) value.V, len(g.Arcs))
	for i := range g.Arcs {
		fns[i] = alg.F.Fns[g.Arcs[i].Label].Apply
	}
	out := make([][]value.V, g.N)
	for u := 0; u < g.N; u++ {
		if u == dest {
			out[u] = []value.V{origin}
			continue
		}
		var weights []value.V
		for _, path := range g.SimplePaths(u, dest, maxLen) {
			w := origin
			for i := len(path) - 1; i >= 0; i-- {
				w = fns[path[i]](w)
			}
			weights = append(weights, w)
		}
		out[u] = alg.Ord.MinSet(weights)
	}
	return out
}

// VerifyGlobal checks a solution against brute-force ground truth: every
// routed node's weight must be equivalent to some minimal path weight and
// ≲ every minimal path weight; nodes with paths must be routed. It
// returns ok plus a human-readable discrepancy report ("" when ok).
func VerifyGlobal(alg *ost.OrderTransform, g *graph.Graph, dest int, origin value.V, res *Result) (bool, string) {
	truth := BruteForce(alg, g, dest, origin, 0)
	for u := 0; u < g.N; u++ {
		switch {
		case len(truth[u]) == 0 && res.Routed[u]:
			return false, fmt.Sprintf("node %d routed but has no path", u)
		case len(truth[u]) > 0 && !res.Routed[u]:
			return false, fmt.Sprintf("node %d has paths but no route", u)
		case len(truth[u]) == 0:
			continue
		}
		w := res.Weights[u]
		matched := false
		for _, t := range truth[u] {
			if alg.Ord.Equiv(w, t) {
				matched = true
			}
			if alg.Ord.Lt(t, w) {
				return false, fmt.Sprintf("node %d: weight %s is strictly worse than optimal %s",
					u, value.Format(w), value.Format(t))
			}
		}
		if !matched {
			return false, fmt.Sprintf("node %d: weight %s matches no optimal weight %s",
				u, value.Format(w), value.FormatSet(truth[u]))
		}
	}
	return true, ""
}

// VerifyDominates checks the M-only ("walk optimum") guarantee: a
// converged fixpoint over a monotone algebra yields weights that are ≲
// the weight of *every* simple path, because simple paths are a subset of
// the walks the fixpoint minimizes over. Unlike VerifyGlobal it does not
// require the weight to be realized by a simple path — for monotone but
// non-nondecreasing algebras (e.g. scoped products whose inter-region
// arcs originate fresh attributes) the optimum may only be realized by a
// walk.
func VerifyDominates(alg *ost.OrderTransform, g *graph.Graph, dest int, origin value.V, res *Result) (bool, string) {
	for u := 0; u < g.N; u++ {
		if u == dest {
			continue
		}
		for _, path := range g.SimplePaths(u, dest, 0) {
			w := origin
			for i := len(path) - 1; i >= 0; i-- {
				w = arcFn(alg, g, path[i])(w)
			}
			if !res.Routed[u] {
				return false, fmt.Sprintf("node %d has a path but no route", u)
			}
			if !alg.Ord.Leq(res.Weights[u], w) {
				return false, fmt.Sprintf("node %d: weight %s does not dominate path weight %s",
					u, value.Format(res.Weights[u]), value.Format(w))
			}
		}
	}
	return true, ""
}

// VerifyLocal checks local optimality (stability): every routed node's
// weight equals the application of its next-hop arc to the next hop's
// weight, and no alternative arc offers a strictly better weight given the
// neighbours' current routes — i.e. the solution is a stable routing in
// Sobrinho's sense.
func VerifyLocal(alg *ost.OrderTransform, g *graph.Graph, dest int, origin value.V, res *Result) (bool, string) {
	if !res.Routed[dest] || !alg.Ord.Equiv(res.Weights[dest], origin) {
		return false, "destination must hold its originated weight"
	}
	for u := 0; u < g.N; u++ {
		if u == dest {
			continue
		}
		if !res.Routed[u] {
			// Unrouted is stable only if no neighbour offers a route.
			for _, ai := range g.Out(u) {
				if res.Routed[g.Arcs[ai].To] {
					return false, fmt.Sprintf("node %d unrouted but neighbour %d has a route", u, g.Arcs[ai].To)
				}
			}
			continue
		}
		// Weight consistency with the chosen next hop.
		nhArc := -1
		for _, ai := range g.Out(u) {
			if g.Arcs[ai].To == res.NextHop[u] {
				nhArc = ai
				break
			}
		}
		if nhArc < 0 || !res.Routed[res.NextHop[u]] {
			return false, fmt.Sprintf("node %d: next hop %d invalid", u, res.NextHop[u])
		}
		expect := arcFn(alg, g, nhArc)(res.Weights[res.NextHop[u]])
		if res.Weights[u] != expect && !alg.Ord.Equiv(res.Weights[u], expect) {
			return false, fmt.Sprintf("node %d: weight %s inconsistent with next hop (%s)",
				u, value.Format(res.Weights[u]), value.Format(expect))
		}
		// No strictly better alternative.
		for _, ai := range g.Out(u) {
			v := g.Arcs[ai].To
			if !res.Routed[v] {
				continue
			}
			cand := arcFn(alg, g, ai)(res.Weights[v])
			if alg.Ord.Lt(cand, res.Weights[u]) {
				return false, fmt.Sprintf("node %d: arc to %d offers %s, better than %s",
					u, v, value.Format(cand), value.Format(res.Weights[u]))
			}
		}
	}
	return true, ""
}
