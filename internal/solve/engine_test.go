package solve

import (
	"math/rand"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
)

// TestEngineWrappersPickCompiled: the ost-level entry points route
// through exec.For, so a finite algebra silently gets the table backend
// and produces the same answers as an explicitly dynamic engine.
func TestEngineWrappersPickCompiled(t *testing.T) {
	a, err := core.InferString("delay(64,3)")
	if err != nil {
		t.Fatal(err)
	}
	if exec.For(a.OT, 0).Mode() != exec.ModeCompiled {
		t.Fatal("finite algebra should auto-compile under the wrappers")
	}
	r := rand.New(rand.NewSource(7))
	g := graph.Random(r, 10, 0.3, graph.UniformLabels(3))
	res := Dijkstra(a.OT, g, 0, 0)
	dyn, err := exec.New(a.OT, exec.ModeDynamic, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := DijkstraEngine(dyn, g, 0, 0)
	for u := 0; u < g.N; u++ {
		if res.Routed[u] != ref.Routed[u] {
			t.Fatalf("node %d: routedness differs", u)
		}
		if res.Routed[u] && res.Weights[u] != ref.Weights[u] {
			t.Fatalf("node %d: %v vs %v", u, res.Weights[u], ref.Weights[u])
		}
	}
}

// TestEngineScale routes a 5000-node scale-free network on the compiled
// backend — the "does it hold up at size" smoke (skipped in -short runs).
func TestEngineScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	a, err := core.InferString("delay(4095,4)")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := exec.New(a.OT, exec.ModeCompiled, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	g := graph.ScaleFree(r, 5000, 2, graph.UniformLabels(4))
	res := DijkstraHeapEngine(eng, g, 0, 0)
	routed := 0
	for _, ok := range res.Routed {
		if ok {
			routed++
		}
	}
	if routed != g.N {
		t.Fatalf("only %d/%d nodes routed", routed, g.N)
	}
	bf := BellmanFordEngine(eng, g, 0, 0, 0)
	if !bf.Converged {
		t.Fatal("BF must converge at scale")
	}
	for u := 0; u < g.N; u += 97 {
		if res.Weights[u] != bf.Weights[u] {
			t.Fatalf("node %d: heap %v vs bf %v", u, res.Weights[u], bf.Weights[u])
		}
	}
}
