package solve

import (
	"math/rand"
	"reflect"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
)

// TestEngineWrappersPickCompiled: the ost-level entry points route
// through exec.For, so a finite algebra silently gets the table backend
// and produces the same answers as an explicitly dynamic engine.
func TestEngineWrappersPickCompiled(t *testing.T) {
	a, err := core.InferString("delay(64,3)")
	if err != nil {
		t.Fatal(err)
	}
	if exec.For(a.OT, 0).Mode() != exec.ModeCompiled {
		t.Fatal("finite algebra should auto-compile under the wrappers")
	}
	r := rand.New(rand.NewSource(7))
	g := graph.Random(r, 10, 0.3, graph.UniformLabels(3))
	res := Dijkstra(a.OT, g, 0, 0)
	dyn, err := exec.New(a.OT, exec.ModeDynamic, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := DijkstraEngine(dyn, g, 0, 0)
	for u := 0; u < g.N; u++ {
		if res.Routed[u] != ref.Routed[u] {
			t.Fatalf("node %d: routedness differs", u)
		}
		if res.Routed[u] && res.Weights[u] != ref.Weights[u] {
			t.Fatalf("node %d: %v vs %v", u, res.Weights[u], ref.Weights[u])
		}
	}
}

// TestEngineScale routes a 5000-node scale-free network on the compiled
// backend — the "does it hold up at size" smoke (skipped in -short runs).
func TestEngineScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	a, err := core.InferString("delay(4095,4)")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := exec.New(a.OT, exec.ModeCompiled, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	g := graph.ScaleFree(r, 5000, 2, graph.UniformLabels(4))
	res := DijkstraHeapEngine(eng, g, 0, 0)
	routed := 0
	for _, ok := range res.Routed {
		if ok {
			routed++
		}
	}
	if routed != g.N {
		t.Fatalf("only %d/%d nodes routed", routed, g.N)
	}
	bf := BellmanFordEngine(eng, g, 0, 0, 0)
	if !bf.Converged {
		t.Fatal("BF must converge at scale")
	}
	for u := 0; u < g.N; u += 97 {
		if res.Weights[u] != bf.Weights[u] {
			t.Fatalf("node %d: heap %v vs bf %v", u, res.Weights[u], bf.Weights[u])
		}
	}
}

// TestWorkspaceReuse: a single Workspace driven across many destinations
// and graphs produces Results bit-identical to fresh BellmanFordEngine
// calls — the contract the serve snapshot builder's worker pool relies
// on.
func TestWorkspaceReuse(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	a, err := core.InferString("lex(delay(16,3), bw(4))")
	if err != nil {
		t.Fatal(err)
	}
	eng := exec.For(a.OT)
	ws := NewWorkspace()
	for trial := 0; trial < 10; trial++ {
		g := graph.Random(r, 4+r.Intn(10), 0.35, graph.UniformLabels(a.OT.F.Size()))
		origin := a.OT.Carrier().Elems[r.Intn(a.OT.Carrier().Size())]
		for dest := 0; dest < g.N; dest++ {
			got := ws.BellmanFord(eng, g, dest, origin, 0)
			want := BellmanFordEngine(eng, g, dest, origin, 0)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d dest %d: workspace result differs:\n got: %+v\nwant: %+v", trial, dest, got, want)
			}
			// The Result must own its slices: mutating it must not leak
			// into the next workspace run.
			if len(got.NextHop) > 0 {
				got.NextHop[0] = -99
				got.Routed[0] = !got.Routed[0]
			}
		}
	}
}
