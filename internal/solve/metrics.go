package solve

import "metarouting/internal/telemetry"

// Metrics collects per-stage solver telemetry: how many fixpoint runs
// executed, how many relax passes (rounds) and candidate evaluations
// (relaxations) they took, whether the workspace's buffers were reused
// or had to grow, and a histogram of per-destination solve durations.
// Attach one to a Workspace (Workspace.Metrics); several workspaces may
// share one Metrics — every field is an atomic instrument. A nil
// Metrics disables instrumentation entirely.
type Metrics struct {
	// Runs counts completed fixpoint solves.
	Runs telemetry.Counter
	// Rounds counts relax passes summed over all runs.
	Rounds telemetry.Counter
	// Relaxations counts candidate-route evaluations (one per enabled
	// out-arc of a routed neighbour, per pass).
	Relaxations telemetry.Counter
	// ReuseHits counts solves served entirely from existing workspace
	// buffers; Grows counts solves that had to (re)allocate them.
	ReuseHits telemetry.Counter
	Grows     telemetry.Counter
	// SolveNS is the per-destination solve duration histogram, in
	// nanoseconds.
	SolveNS *telemetry.Histogram
}

// NewMetrics builds a Metrics with the default latency bucket layout.
func NewMetrics() *Metrics {
	return &Metrics{SolveNS: telemetry.NewLatencyHistogram()}
}

// Register exposes the metrics in reg under prefix (e.g. "mrserve_solve").
func (m *Metrics) Register(reg *telemetry.Registry, prefix string) {
	reg.AddCounter(prefix+"_runs_total", "Completed per-destination fixpoint solves.", &m.Runs)
	reg.AddCounter(prefix+"_rounds_total", "Relax passes summed over all solves.", &m.Rounds)
	reg.AddCounter(prefix+"_relaxations_total", "Candidate-route evaluations summed over all solves.", &m.Relaxations)
	reg.AddCounter(prefix+"_workspace_reuses_total", "Solves served from existing workspace buffers.", &m.ReuseHits)
	reg.AddCounter(prefix+"_workspace_grows_total", "Solves that had to grow workspace buffers.", &m.Grows)
	reg.AddHistogram(prefix+"_seconds", "Per-destination solve duration.", m.SolveNS, 1e9)
}
