package solve

import (
	"container/heap"
	"sort"
	"time"

	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/value"
)

// This file holds the engine-level solvers: every algorithm is written
// once against exec.Algebra (weights as int32 indices) and runs
// unchanged over the dynamic and compiled backends. The ost-level entry
// points (Dijkstra, BellmanFord, …) are thin wrappers that pick a
// backend with exec.For, so finite algebras get table-lookup inner loops
// automatically. Index equality coincides with value equality on both
// backends, which is what keeps the change-detection logic identical to
// the historical dynamic solvers.

// resolveResult converts an index-form solution into Result, resolving
// routed weights through the engine (unrouted nodes keep a nil weight).
func resolveResult(eng exec.Algebra, dest int, routed []bool, w []int32, nextHop []int, rounds int, converged bool) *Result {
	res := &Result{
		Dest:      dest,
		Routed:    routed,
		Weights:   make([]value.V, len(routed)),
		NextHop:   nextHop,
		Rounds:    rounds,
		Converged: converged,
	}
	for u := range routed {
		if routed[u] {
			res.Weights[u] = eng.Value(w[u])
		}
	}
	return res
}

func newEngineState(g *graph.Graph, dest int, origin int32) (routed []bool, w []int32, nextHop []int) {
	routed = make([]bool, g.N)
	w = make([]int32, g.N)
	nextHop = make([]int, g.N)
	for i := range nextHop {
		nextHop[i] = -1
	}
	routed[dest] = true
	w[dest] = origin
	return routed, w, nextHop
}

// DijkstraEngine is the generalized Dijkstra over an execution engine;
// semantics match Dijkstra.
func DijkstraEngine(eng exec.Algebra, g *graph.Graph, dest int, origin value.V) *Result {
	o := exec.MustIntern(eng, origin)
	routed, w, nextHop := newEngineState(g, dest, o)
	settled := make([]bool, g.N)
	for rounds := 0; ; rounds++ {
		u := -1
		for v := 0; v < g.N; v++ {
			if settled[v] || !routed[v] {
				continue
			}
			if u < 0 || eng.Lt(w[v], w[u]) {
				u = v
			}
		}
		if u < 0 {
			return resolveResult(eng, dest, routed, w, nextHop, rounds, true)
		}
		settled[u] = true
		for _, ai := range g.In(u) {
			p := g.Arcs[ai].From
			if settled[p] {
				continue
			}
			cand := eng.Apply(g.Arcs[ai].Label, w[u])
			if !routed[p] || eng.Lt(cand, w[p]) {
				routed[p] = true
				w[p] = cand
				nextHop[p] = u
			}
		}
	}
}

// DijkstraHeapEngine is Dijkstra with a binary-heap frontier (lazy
// deletion) instead of the O(N²) linear settle scan — O((N+M) log N)
// engine operations. Correctness requirements are identical to Dijkstra:
// M ∧ ND over a total preorder.
func DijkstraHeapEngine(eng exec.Algebra, g *graph.Graph, dest int, origin value.V) *Result {
	o := exec.MustIntern(eng, origin)
	routed, w, nextHop := newEngineState(g, dest, o)
	settled := make([]bool, g.N)
	h := &frontier{eng: eng}
	heap.Push(h, frontierItem{node: dest, weight: o})
	rounds := 0
	for h.Len() > 0 {
		it := heap.Pop(h).(frontierItem)
		u := it.node
		if settled[u] || !routed[u] || w[u] != it.weight {
			continue // stale entry (lazy deletion)
		}
		settled[u] = true
		rounds++
		for _, ai := range g.In(u) {
			p := g.Arcs[ai].From
			if settled[p] {
				continue
			}
			cand := eng.Apply(g.Arcs[ai].Label, w[u])
			if !routed[p] || eng.Lt(cand, w[p]) {
				routed[p] = true
				w[p] = cand
				nextHop[p] = u
				heap.Push(h, frontierItem{node: p, weight: cand})
			}
		}
	}
	return resolveResult(eng, dest, routed, w, nextHop, rounds, true)
}

type frontierItem struct {
	node   int
	weight int32
}

// frontier orders items by the engine's strict preference. Equivalent
// weights compare equal, which a binary heap handles fine.
type frontier struct {
	eng   exec.Algebra
	items []frontierItem
}

func (f *frontier) Len() int           { return len(f.items) }
func (f *frontier) Less(i, j int) bool { return f.eng.Lt(f.items[i].weight, f.items[j].weight) }
func (f *frontier) Swap(i, j int)      { f.items[i], f.items[j] = f.items[j], f.items[i] }
func (f *frontier) Push(x any)         { f.items = append(f.items, x.(frontierItem)) }
func (f *frontier) Pop() any {
	old := f.items
	n := len(old)
	it := old[n-1]
	f.items = old[:n-1]
	return it
}

// Workspace holds the per-run scratch buffers of the synchronous
// fixpoint solver, so a worker that computes many destinations in a row
// — the shape of the serve snapshot builder's pool — reuses one set of
// allocations instead of five fresh slices per destination. A Workspace
// is not safe for concurrent use; give each worker its own.
type Workspace struct {
	routed, prevR []bool
	w, prevW      []int32
	nextHop       []int

	// Worklist-solver scratch (see delta.go): FIFO of dirty nodes with a
	// membership bitmap, the set of nodes ever enqueued during a drain,
	// and an intrusive children index over the previous forwarding tree
	// used to invalidate subtrees on arc-down events.
	dirty     []bool
	queue     []int
	touched   []bool
	touchList []int
	childHead []int32
	childNext []int32

	// Epoch-stamped node sets (see sparse.go). marks backs the public
	// ResetMarks/Mark/Marked bitmap the RIB delta rebuild reuses as its
	// redo set; loaded gates the sparse delta drain's lazy warm-start
	// overlay; vmarks memoizes forward-chain verification. Bumping an
	// epoch invalidates a whole set in O(1), so none of them needs a
	// per-run O(N) clear.
	marks, loaded, vmarks            []uint32
	markEpoch, loadEpoch, vmarkEpoch uint32
	// stack and vstack are DFS/chain scratch for the sparse drain and
	// the chain verifier.
	stack, vstack []int

	// Metrics, when non-nil, receives per-stage solver telemetry (run
	// durations, relax-pass and relaxation counts, buffer reuse). Several
	// workspaces may share one Metrics.
	Metrics *Metrics
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// reset sizes the buffers for an n-node run and installs the origin.
func (ws *Workspace) reset(n, dest int, origin int32) {
	if cap(ws.routed) < n {
		ws.routed = make([]bool, n)
		ws.prevR = make([]bool, n)
		ws.w = make([]int32, n)
		ws.prevW = make([]int32, n)
		ws.nextHop = make([]int, n)
		if ws.Metrics != nil {
			ws.Metrics.Grows.Inc()
		}
	} else if ws.Metrics != nil {
		ws.Metrics.ReuseHits.Inc()
	}
	ws.routed = ws.routed[:n]
	ws.prevR = ws.prevR[:n]
	ws.w = ws.w[:n]
	ws.prevW = ws.prevW[:n]
	ws.nextHop = ws.nextHop[:n]
	for i := 0; i < n; i++ {
		ws.routed[i] = false
		ws.nextHop[i] = -1
	}
	ws.routed[dest] = true
	ws.w[dest] = origin
}

// materialize copies the workspace state into a fresh Result (the
// buffers are about to be reused, so the Result must own its slices).
func (ws *Workspace) materialize(eng exec.Algebra, dest, rounds int, converged bool) *Result {
	res := &Result{
		Dest:      dest,
		Routed:    append([]bool(nil), ws.routed...),
		Weights:   make([]value.V, len(ws.routed)),
		NextHop:   append([]int(nil), ws.nextHop...),
		Rounds:    rounds,
		Converged: converged,
	}
	for u := range ws.routed {
		if ws.routed[u] {
			res.Weights[u] = eng.Value(ws.w[u])
		}
	}
	return res
}

// BellmanFordEngine is the synchronous fixpoint iteration over an
// execution engine; semantics match BellmanFord.
func BellmanFordEngine(eng exec.Algebra, g *graph.Graph, dest int, origin value.V, maxRounds int) *Result {
	return NewWorkspace().BellmanFord(eng, g, dest, origin, maxRounds)
}

// BellmanFord runs BellmanFordEngine out of the workspace's reusable
// buffers. The returned Result owns fresh copies of its slices and is
// bit-identical to a BellmanFordEngine call with the same arguments.
// When ws.Metrics is set, the run's duration, relax passes and
// relaxation count are recorded (one clock read pair per run — the
// inner loops stay uninstrumented).
func (ws *Workspace) BellmanFord(eng exec.Algebra, g *graph.Graph, dest int, origin value.V, maxRounds int) *Result {
	raw := ws.BellmanFordRaw(eng, g, dest, origin, maxRounds)
	return ws.materialize(eng, dest, raw.Rounds, raw.Converged)
}

// Raw is an index-form single-destination solution whose slices alias
// the workspace's reusable buffers: weights are engine indices, not
// resolved values. A Raw is valid only until the workspace's next solve
// and must be treated as read-only — it exists so the RIB layer can
// fill arena columns straight from solver state without materializing
// one interface value and three fresh slices per destination.
type Raw struct {
	// Dest is the destination node.
	Dest int
	// Routed marks nodes holding a route; W holds their engine weight
	// index and NextHop their forwarding neighbour (-1 at Dest and at
	// unrouted nodes).
	Routed  []bool
	W       []int32
	NextHop []int
	// Rounds and Converged mirror Result.
	Rounds    int
	Converged bool
}

// raw wraps the workspace's live state as a Raw view.
func (ws *Workspace) raw(dest, rounds int, converged bool) Raw {
	return Raw{
		Dest:      dest,
		Routed:    ws.routed,
		W:         ws.w,
		NextHop:   ws.nextHop,
		Rounds:    rounds,
		Converged: converged,
	}
}

// BellmanFordRaw is BellmanFord without the materialization step: the
// returned Raw aliases the workspace buffers (valid until the next
// solve) and is index-form — the arena column builders consume it.
func (ws *Workspace) BellmanFordRaw(eng exec.Algebra, g *graph.Graph, dest int, origin value.V, maxRounds int) Raw {
	var t0 time.Time
	if ws.Metrics != nil {
		t0 = time.Now()
	}
	rounds, relaxations, converged := ws.bellmanFord(eng, g, dest, origin, maxRounds)
	if m := ws.Metrics; m != nil {
		m.Runs.Inc()
		m.Rounds.Add(uint64(rounds))
		m.Relaxations.Add(relaxations)
		m.SolveNS.Observe(time.Since(t0).Nanoseconds())
	}
	return ws.raw(dest, rounds, converged)
}

func (ws *Workspace) bellmanFord(eng exec.Algebra, g *graph.Graph, dest int, origin value.V, maxRounds int) (int, uint64, bool) {
	if maxRounds <= 0 {
		maxRounds = 2*g.N + 4
	}
	o := exec.MustIntern(eng, origin)
	ws.reset(g.N, dest, o)
	routed, w, nextHop := ws.routed, ws.w, ws.nextHop
	prevW, prevR := ws.prevW, ws.prevR
	rounds := 0
	var relaxations uint64
	for round := 1; round <= maxRounds; round++ {
		copy(prevW, w)
		copy(prevR, routed)
		changed := false
		for u := 0; u < g.N; u++ {
			if u == dest {
				continue
			}
			bestArc := -1
			var best int32
			for _, ai := range g.Out(u) {
				v := g.Arcs[ai].To
				if !prevR[v] {
					continue
				}
				relaxations++
				cand := eng.Apply(g.Arcs[ai].Label, prevW[v])
				if bestArc < 0 || eng.Lt(cand, best) {
					bestArc, best = ai, cand
				}
			}
			if bestArc < 0 {
				if routed[u] {
					routed[u] = false
					nextHop[u] = -1
					changed = true
				}
				continue
			}
			nh := g.Arcs[bestArc].To
			if !routed[u] || w[u] != best || nextHop[u] != nh {
				changed = true
				routed[u] = true
				w[u] = best
				nextHop[u] = nh
			}
		}
		rounds = round
		if !changed {
			return rounds, relaxations, true
		}
	}
	return rounds, relaxations, false
}

// GaussSeidelEngine is BellmanFordEngine with in-place (chaotic
// relaxation) updates; semantics match GaussSeidel.
func GaussSeidelEngine(eng exec.Algebra, g *graph.Graph, dest int, origin value.V, maxRounds int) *Result {
	if maxRounds <= 0 {
		maxRounds = 2*g.N + 4
	}
	o := exec.MustIntern(eng, origin)
	routed, w, nextHop := newEngineState(g, dest, o)
	rounds := 0
	for round := 1; round <= maxRounds; round++ {
		changed := false
		for u := 0; u < g.N; u++ {
			if u == dest {
				continue
			}
			bestArc := -1
			var best int32
			for _, ai := range g.Out(u) {
				v := g.Arcs[ai].To
				if !routed[v] {
					continue
				}
				cand := eng.Apply(g.Arcs[ai].Label, w[v])
				if bestArc < 0 || eng.Lt(cand, best) {
					bestArc, best = ai, cand
				}
			}
			if bestArc < 0 {
				if routed[u] {
					routed[u] = false
					nextHop[u] = -1
					changed = true
				}
				continue
			}
			nh := g.Arcs[bestArc].To
			if !routed[u] || w[u] != best || nextHop[u] != nh {
				changed = true
				routed[u] = true
				w[u] = best
				nextHop[u] = nh
			}
		}
		rounds = round
		if !changed {
			return resolveResult(eng, dest, routed, w, nextHop, rounds, true)
		}
	}
	return resolveResult(eng, dest, routed, w, nextHop, rounds, false)
}

// KBestEngine computes the k best route weights over an execution
// engine; semantics match KBest.
func KBestEngine(eng exec.Algebra, g *graph.Graph, dest int, origin value.V, k, maxRounds int) *KBestResult {
	if k < 1 {
		panic("solve: KBest needs k ≥ 1")
	}
	if maxRounds <= 0 {
		maxRounds = 2*g.N + 2*k + 4
	}
	o := exec.MustIntern(eng, origin)
	weights := make([][]int32, g.N)
	weights[dest] = []int32{o}
	res := &KBestResult{Dest: dest}
	for round := 1; round <= maxRounds; round++ {
		prev := make([][]int32, g.N)
		copy(prev, weights)
		changed := false
		for u := 0; u < g.N; u++ {
			if u == dest {
				continue
			}
			var cands []int32
			for _, ai := range g.Out(u) {
				label := g.Arcs[ai].Label
				for _, w := range prev[g.Arcs[ai].To] {
					cands = append(cands, eng.Apply(label, w))
				}
			}
			next := kMinIdx(eng, cands, k)
			if !sameIdx(next, weights[u]) {
				weights[u] = next
				changed = true
			}
		}
		res.Rounds = round
		if !changed {
			res.Converged = true
			break
		}
	}
	res.Weights = make([][]value.V, g.N)
	for u := range weights {
		if weights[u] == nil {
			continue
		}
		res.Weights[u] = make([]value.V, len(weights[u]))
		for i, w := range weights[u] {
			res.Weights[u][i] = eng.Value(w)
		}
	}
	return res
}

// kMinIdx sorts candidates by the (total) preorder, stably, and keeps
// the first k — the index-form twin of kMin.
func kMinIdx(eng exec.Algebra, cands []int32, k int) []int32 {
	sort.SliceStable(cands, func(i, j int) bool { return eng.Lt(cands[i], cands[j]) })
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]int32, len(cands))
	copy(out, cands)
	return out
}

func sameIdx(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ClosureEngine computes the transitive closure A⁺ over a semiring
// engine; semantics match Closure.
func ClosureEngine(sr exec.Semiring, g *graph.Graph, weights []value.V, maxRounds int) *ClosureResult {
	if maxRounds <= 0 {
		maxRounds = 2*g.N + 4
	}
	n := g.N
	wIdx := make([]int32, len(weights))
	for i, w := range weights {
		idx, err := sr.Intern(w)
		if err != nil {
			panic(err)
		}
		wIdx[i] = idx
	}
	a := make([][]int32, n)
	adef := make([][]bool, n)
	for u := 0; u < n; u++ {
		a[u] = make([]int32, n)
		adef[u] = make([]bool, n)
	}
	for _, arc := range g.Arcs {
		w := wIdx[arc.Label]
		if adef[arc.From][arc.To] {
			a[arc.From][arc.To] = sr.Add(a[arc.From][arc.To], w)
		} else {
			a[arc.From][arc.To] = w
			adef[arc.From][arc.To] = true
		}
	}
	x := cloneIdxMat(a)
	xdef := cloneDef(adef)
	res := &ClosureResult{}
	for round := 1; round <= maxRounds; round++ {
		nx := cloneIdxMat(a)
		ndef := cloneDef(adef)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				for k := 0; k < n; k++ {
					if !adef[u][k] || !xdef[k][v] {
						continue
					}
					term := sr.Mul(a[u][k], x[k][v])
					if ndef[u][v] {
						nx[u][v] = sr.Add(nx[u][v], term)
					} else {
						nx[u][v] = term
						ndef[u][v] = true
					}
				}
			}
		}
		res.Rounds = round
		if idxMatEqual(nx, ndef, x, xdef) {
			res.Converged = true
			break
		}
		x, xdef = nx, ndef
	}
	res.Defined = xdef
	res.X = make([][]value.V, n)
	for u := 0; u < n; u++ {
		res.X[u] = make([]value.V, n)
		for v := 0; v < n; v++ {
			if xdef[u][v] {
				res.X[u][v] = sr.Value(x[u][v])
			}
		}
	}
	return res
}

func cloneIdxMat(a [][]int32) [][]int32 {
	out := make([][]int32, len(a))
	for i := range a {
		out[i] = append([]int32(nil), a[i]...)
	}
	return out
}

func idxMatEqual(x [][]int32, xd [][]bool, y [][]int32, yd [][]bool) bool {
	for i := range x {
		for j := range x[i] {
			if xd[i][j] != yd[i][j] {
				return false
			}
			if xd[i][j] && x[i][j] != y[i][j] {
				return false
			}
		}
	}
	return true
}
