package solve

import (
	"math/rand"
	"testing"

	"metarouting/internal/baselib"
	"metarouting/internal/graph"
	"metarouting/internal/value"
)

// diamond is 0→1→3, 0→2→3, 0→3 (a DAG with 3 routes 0→3).
func diamond() *graph.Graph {
	return graph.MustNew(4, []graph.Arc{
		{From: 0, To: 1, Label: 0},
		{From: 0, To: 2, Label: 0},
		{From: 1, To: 3, Label: 0},
		{From: 2, To: 3, Label: 0},
		{From: 0, To: 3, Label: 0},
	})
}

func TestClosureShortestDistances(t *testing.T) {
	b := baselib.MinPlus(64)
	g := graph.MustNew(4, []graph.Arc{
		{From: 0, To: 1, Label: 0}, // weight 1
		{From: 1, To: 2, Label: 0},
		{From: 2, To: 3, Label: 0},
		{From: 0, To: 3, Label: 1}, // weight 7
	})
	res := Closure(b, g, []value.V{1, 7}, 0)
	if !res.Converged {
		t.Fatal("min-plus closure must converge")
	}
	if !res.Defined[0][3] || res.X[0][3] != 3 {
		t.Fatalf("d(0,3) = %v, want 3", res.X[0][3])
	}
	if !res.Defined[0][2] || res.X[0][2] != 2 {
		t.Fatalf("d(0,2) = %v, want 2", res.X[0][2])
	}
	if res.Defined[3][0] {
		t.Fatal("no walk 3→0 exists")
	}
}

func TestClosureCountsPaths(t *testing.T) {
	// (ℕ,+,×) counts walks; on a DAG, walks = paths (§III's path-counting
	// bisemigroup).
	b := baselib.PlusTimes(100)
	res := Closure(b, diamond(), []value.V{1}, 0)
	if !res.Converged {
		t.Fatal("path counting on a DAG must converge")
	}
	if res.X[0][3] != 3 {
		t.Fatalf("0→3 path count = %v, want 3", res.X[0][3])
	}
	if res.X[0][1] != 1 {
		t.Fatalf("0→1 path count = %v, want 1", res.X[0][1])
	}
}

func TestClosureReachability(t *testing.T) {
	b := baselib.BoolReach()
	g := graph.MustNew(4, []graph.Arc{
		{From: 0, To: 1, Label: 0},
		{From: 1, To: 2, Label: 0},
	})
	res := Closure(b, g, []value.V{1}, 0)
	if !res.Converged {
		t.Fatal("boolean closure must converge")
	}
	if res.X[0][2] != 1 {
		t.Fatal("0 reaches 2")
	}
	if res.Defined[0][3] && res.X[0][3] == 1 {
		t.Fatal("0 must not reach 3")
	}
}

func TestClosureWidestPath(t *testing.T) {
	b := baselib.MaxMin(10)
	g := graph.MustNew(3, []graph.Arc{
		{From: 0, To: 1, Label: 0}, // width 8
		{From: 1, To: 2, Label: 1}, // width 3
		{From: 0, To: 2, Label: 2}, // width 5 direct
	})
	res := Closure(b, g, []value.V{8, 3, 5}, 0)
	if !res.Converged {
		t.Fatal("max-min closure must converge")
	}
	// Widest 0→2: direct 5 beats min(8,3)=3.
	if res.X[0][2] != 5 {
		t.Fatalf("widest(0,2) = %v, want 5", res.X[0][2])
	}
}

// TestClosureMatchesDijkstraOnRandomGraphs cross-validates the algebraic
// solver against the order-transform solver: min-plus closure distances
// equal Dijkstra distances on the delay algebra with matching labels.
func TestClosureMatchesDijkstraOnRandomGraphs(t *testing.T) {
	b := baselib.MinPlus(4096)
	a := alg(t, "delay(4096,4)")
	weights := []value.V{1, 2, 3, 4}
	r := rand.New(rand.NewSource(16))
	for trial := 0; trial < 10; trial++ {
		g := graph.Random(r, 8, 0.3, graph.UniformLabels(4))
		cl := Closure(b, g, weights, 4*g.N)
		if !cl.Converged {
			t.Fatalf("trial %d: closure must converge", trial)
		}
		dj := Dijkstra(a, g, 0, 0)
		for u := 1; u < g.N; u++ {
			if cl.Defined[u][0] != dj.Routed[u] {
				t.Fatalf("trial %d node %d: definedness differs", trial, u)
			}
			if dj.Routed[u] && cl.X[u][0] != dj.Weights[u] {
				t.Fatalf("trial %d node %d: closure %v vs dijkstra %v", trial, u, cl.X[u][0], dj.Weights[u])
			}
		}
	}
}

// TestClosureNonConvergenceDetected: path counting over a cycle never
// stabilizes below the saturation bound — but with saturating arithmetic
// it must converge to the ceiling rather than loop forever.
func TestClosureSaturatesOnCycles(t *testing.T) {
	b := baselib.PlusTimes(50)
	g := graph.MustNew(2, []graph.Arc{
		{From: 0, To: 1, Label: 0},
		{From: 1, To: 0, Label: 0},
	})
	res := Closure(b, g, []value.V{1}, 200)
	if !res.Converged {
		t.Fatal("saturating arithmetic must reach a fixpoint")
	}
	if res.X[0][1].(int) != 50 {
		t.Fatalf("cyclic walk count must saturate at the ceiling: %v", res.X[0][1])
	}
}
