package solve

import (
	"metarouting/internal/bsg"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/value"
)

// ClosureResult is an all-pairs algebraic path solution over a
// bisemigroup: X[u][v] summarizes (⊕) the ⊗-weights of walks u → v.
type ClosureResult struct {
	// X[u][v] is the summarized weight; Defined[u][v] reports whether any
	// walk contributed.
	X       [][]value.V
	Defined [][]bool
	// Rounds counts iterations of X ← A⊗X ⊕ A.
	Rounds int
	// Converged reports whether the iteration reached a fixpoint within
	// its budget (q-stability in the Gondran–Minoux sense).
	Converged bool
}

// Closure computes the transitive closure A⁺ = A ⊕ A² ⊕ A³ ⊕ … of the
// weighted adjacency matrix of g over the bisemigroup b, by iterating
// X ← (A ⊗ X) ⊕ A until a fixpoint or maxRounds (≤ 0 means 2·N+4). Arc
// weights are drawn from `weights`, indexed by arc label.
//
// This is the classic algebraic-path algorithm (Carré, Gondran–Minoux):
// with ⊕ = min it computes shortest distances; with (⊕,⊗) = (+sat, ×sat)
// it counts walks (= paths on DAGs); with the boolean bisemigroup it is
// reachability. The iteration stabilizes when the bisemigroup is
// q-stable on the graph (e.g. ⊕ idempotent with nondecreasing ⊗, or any
// DAG).
//
// The execution backend is chosen by exec.ForSemiring: finite closed
// bisemigroups run on dense ⊕/⊗ tables. Use ClosureEngine to pin a
// backend explicitly.
func Closure(b *bsg.Bisemigroup, g *graph.Graph, weights []value.V, maxRounds int) *ClosureResult {
	return ClosureEngine(exec.ForSemiring(b, weights...), g, weights, maxRounds)
}

func cloneDef(a [][]bool) [][]bool {
	out := make([][]bool, len(a))
	for i := range a {
		out[i] = append([]bool(nil), a[i]...)
	}
	return out
}
