package solve

import (
	"metarouting/internal/bsg"
	"metarouting/internal/graph"
	"metarouting/internal/value"
)

// ClosureResult is an all-pairs algebraic path solution over a
// bisemigroup: X[u][v] summarizes (⊕) the ⊗-weights of walks u → v.
type ClosureResult struct {
	// X[u][v] is the summarized weight; Defined[u][v] reports whether any
	// walk contributed.
	X       [][]value.V
	Defined [][]bool
	// Rounds counts iterations of X ← A⊗X ⊕ A.
	Rounds int
	// Converged reports whether the iteration reached a fixpoint within
	// its budget (q-stability in the Gondran–Minoux sense).
	Converged bool
}

// Closure computes the transitive closure A⁺ = A ⊕ A² ⊕ A³ ⊕ … of the
// weighted adjacency matrix of g over the bisemigroup b, by iterating
// X ← (A ⊗ X) ⊕ A until a fixpoint or maxRounds (≤ 0 means 2·N+4). Arc
// weights are drawn from `weights`, indexed by arc label.
//
// This is the classic algebraic-path algorithm (Carré, Gondran–Minoux):
// with ⊕ = min it computes shortest distances; with (⊕,⊗) = (+sat, ×sat)
// it counts walks (= paths on DAGs); with the boolean bisemigroup it is
// reachability. The iteration stabilizes when the bisemigroup is
// q-stable on the graph (e.g. ⊕ idempotent with nondecreasing ⊗, or any
// DAG).
func Closure(b *bsg.Bisemigroup, g *graph.Graph, weights []value.V, maxRounds int) *ClosureResult {
	if maxRounds <= 0 {
		maxRounds = 2*g.N + 4
	}
	n := g.N
	// A[u][v]: ⊕ of weights of arcs u→v (parallel arcs summarize).
	a := make([][]value.V, n)
	adef := make([][]bool, n)
	for u := 0; u < n; u++ {
		a[u] = make([]value.V, n)
		adef[u] = make([]bool, n)
	}
	for _, arc := range g.Arcs {
		w := weights[arc.Label]
		if adef[arc.From][arc.To] {
			a[arc.From][arc.To] = b.Add.Op(a[arc.From][arc.To], w)
		} else {
			a[arc.From][arc.To] = w
			adef[arc.From][arc.To] = true
		}
	}
	res := &ClosureResult{X: cloneMat(a), Defined: cloneDef(adef)}
	for round := 1; round <= maxRounds; round++ {
		nx := cloneMat(a)
		ndef := cloneDef(adef)
		// nx = (A ⊗ X) ⊕ A.
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				for w := 0; w < n; w++ {
					if !adef[u][w] || !res.Defined[w][v] {
						continue
					}
					term := b.Mul.Op(a[u][w], res.X[w][v])
					if ndef[u][v] {
						nx[u][v] = b.Add.Op(nx[u][v], term)
					} else {
						nx[u][v] = term
						ndef[u][v] = true
					}
				}
			}
		}
		res.Rounds = round
		if matEqual(nx, ndef, res.X, res.Defined) {
			res.Converged = true
			return res
		}
		res.X, res.Defined = nx, ndef
	}
	res.Converged = false
	return res
}

func cloneMat(a [][]value.V) [][]value.V {
	out := make([][]value.V, len(a))
	for i := range a {
		out[i] = append([]value.V(nil), a[i]...)
	}
	return out
}

func cloneDef(a [][]bool) [][]bool {
	out := make([][]bool, len(a))
	for i := range a {
		out[i] = append([]bool(nil), a[i]...)
	}
	return out
}

func matEqual(x [][]value.V, xd [][]bool, y [][]value.V, yd [][]bool) bool {
	for i := range x {
		for j := range x[i] {
			if xd[i][j] != yd[i][j] {
				return false
			}
			if xd[i][j] && x[i][j] != y[i][j] {
				return false
			}
		}
	}
	return true
}
