// Package compile specializes finite order transforms (and bisemigroups)
// into dense integer tables for the routing hot path: carrier elements
// become indices, functions become lookup arrays, and the preorder
// becomes a strictness matrix. The compiled form removes all interface
// dispatch and map traffic from the inner loops of route computation.
//
// This package only builds tables; execution lives behind the unified
// internal/exec.Algebra interface, which every solver and the protocol
// simulator consume — the engine-differential tests and the
// BenchmarkEngineDynamicVsCompiled* suite measure the tables against the
// dynamic representation.
package compile

import (
	"fmt"

	"metarouting/internal/ost"
	"metarouting/internal/value"
)

// Compiled is a finite order transform in dense-table form.
type Compiled struct {
	// N is the carrier size; weights are indices 0..N-1.
	N int
	// Elems maps index → original value.
	Elems []value.V
	// Index maps original value → index.
	Index map[value.V]int
	// Fn[f][w] applies function f to weight w.
	Fn [][]int32
	// LeqBits[a*N+b] is 1 iff a ≲ b; LtBits likewise for a < b.
	LeqBits, LtBits []uint8
}

// New compiles a finite order transform. It fails on infinite carriers
// or function sets, and on carriers above 1<<15 elements (the tables
// would be quadratic).
func New(t *ost.OrderTransform) (*Compiled, error) {
	if !t.Finite() {
		return nil, fmt.Errorf("compile: %s is not finitely enumerable", t.Name)
	}
	n := t.Carrier().Size()
	if n > 1<<15 {
		return nil, fmt.Errorf("compile: carrier of %s too large (%d elements)", t.Name, n)
	}
	c := &Compiled{
		N:       n,
		Elems:   append([]value.V(nil), t.Carrier().Elems...),
		Index:   make(map[value.V]int, n),
		LeqBits: make([]uint8, n*n),
		LtBits:  make([]uint8, n*n),
	}
	for i, e := range c.Elems {
		c.Index[e] = i
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			leqAB := t.Ord.Leq(c.Elems[a], c.Elems[b])
			if leqAB {
				c.LeqBits[a*n+b] = 1
			}
			if leqAB && !t.Ord.Leq(c.Elems[b], c.Elems[a]) {
				c.LtBits[a*n+b] = 1
			}
		}
	}
	c.Fn = make([][]int32, len(t.F.Fns))
	for fi, f := range t.F.Fns {
		tab := make([]int32, n)
		for wi, e := range c.Elems {
			out := f.Apply(e)
			oi, ok := c.Index[out]
			if !ok {
				return nil, fmt.Errorf("compile: function %s of %s maps %s outside the carrier",
					f.Name, t.Name, value.Format(out))
			}
			tab[wi] = int32(oi)
		}
		c.Fn[fi] = tab
	}
	return c, nil
}

// Leq reports a ≲ b on compiled indices.
func (c *Compiled) Leq(a, b int) bool { return c.LeqBits[a*c.N+b] == 1 }

// Lt reports a < b on compiled indices.
func (c *Compiled) Lt(a, b int) bool { return c.LtBits[a*c.N+b] == 1 }

// Apply applies function f to weight index w.
func (c *Compiled) Apply(f, w int) int { return int(c.Fn[f][w]) }
