// Package compile specializes finite order transforms into dense integer
// tables for the routing hot path: carrier elements become indices,
// functions become lookup arrays, and the preorder becomes a strictness
// matrix. The compiled form removes all interface dispatch and map
// traffic from the inner loops of route computation — the ablation
// benchmarks measure the gap against the dynamic representation.
package compile

import (
	"fmt"

	"metarouting/internal/graph"
	"metarouting/internal/ost"
	"metarouting/internal/value"
)

// Compiled is a finite order transform in dense-table form.
type Compiled struct {
	// N is the carrier size; weights are indices 0..N-1.
	N int
	// Elems maps index → original value.
	Elems []value.V
	// Index maps original value → index.
	Index map[value.V]int
	// Fn[f][w] applies function f to weight w.
	Fn [][]int32
	// LeqBits[a*N+b] is 1 iff a ≲ b; LtBits likewise for a < b.
	LeqBits, LtBits []uint8
}

// New compiles a finite order transform. It fails on infinite carriers
// or function sets, and on carriers above 1<<15 elements (the tables
// would be quadratic).
func New(t *ost.OrderTransform) (*Compiled, error) {
	if !t.Finite() {
		return nil, fmt.Errorf("compile: %s is not finitely enumerable", t.Name)
	}
	n := t.Carrier().Size()
	if n > 1<<15 {
		return nil, fmt.Errorf("compile: carrier of %s too large (%d elements)", t.Name, n)
	}
	c := &Compiled{
		N:       n,
		Elems:   append([]value.V(nil), t.Carrier().Elems...),
		Index:   make(map[value.V]int, n),
		LeqBits: make([]uint8, n*n),
		LtBits:  make([]uint8, n*n),
	}
	for i, e := range c.Elems {
		c.Index[e] = i
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			leqAB := t.Ord.Leq(c.Elems[a], c.Elems[b])
			if leqAB {
				c.LeqBits[a*n+b] = 1
			}
			if leqAB && !t.Ord.Leq(c.Elems[b], c.Elems[a]) {
				c.LtBits[a*n+b] = 1
			}
		}
	}
	c.Fn = make([][]int32, len(t.F.Fns))
	for fi, f := range t.F.Fns {
		tab := make([]int32, n)
		for wi, e := range c.Elems {
			out := f.Apply(e)
			oi, ok := c.Index[out]
			if !ok {
				return nil, fmt.Errorf("compile: function %s of %s maps %s outside the carrier",
					f.Name, t.Name, value.Format(out))
			}
			tab[wi] = int32(oi)
		}
		c.Fn[fi] = tab
	}
	return c, nil
}

// Leq reports a ≲ b on compiled indices.
func (c *Compiled) Leq(a, b int) bool { return c.LeqBits[a*c.N+b] == 1 }

// Lt reports a < b on compiled indices.
func (c *Compiled) Lt(a, b int) bool { return c.LtBits[a*c.N+b] == 1 }

// Apply applies function f to weight index w.
func (c *Compiled) Apply(f, w int) int { return int(c.Fn[f][w]) }

// Result is a compiled routing solution; weights are carrier indices
// (resolve through Elems).
type Result struct {
	Dest      int
	Routed    []bool
	Weight    []int
	NextHop   []int
	Rounds    int
	Converged bool
}

// BellmanFord runs the synchronous fixpoint iteration entirely over
// compiled tables. Semantics match solve.BellmanFord.
func (c *Compiled) BellmanFord(g *graph.Graph, dest, originIdx, maxRounds int) *Result {
	if maxRounds <= 0 {
		maxRounds = 2*g.N + 4
	}
	res := &Result{
		Dest:    dest,
		Routed:  make([]bool, g.N),
		Weight:  make([]int, g.N),
		NextHop: make([]int, g.N),
	}
	for i := range res.NextHop {
		res.NextHop[i] = -1
	}
	res.Routed[dest] = true
	res.Weight[dest] = originIdx
	prevW := make([]int, g.N)
	prevR := make([]bool, g.N)
	for round := 1; round <= maxRounds; round++ {
		copy(prevW, res.Weight)
		copy(prevR, res.Routed)
		changed := false
		for u := 0; u < g.N; u++ {
			if u == dest {
				continue
			}
			bestArc, best := -1, 0
			for _, ai := range g.Out(u) {
				v := g.Arcs[ai].To
				if !prevR[v] {
					continue
				}
				cand := int(c.Fn[g.Arcs[ai].Label][prevW[v]])
				if bestArc < 0 || c.LtBits[cand*c.N+best] == 1 {
					bestArc, best = ai, cand
				}
			}
			if bestArc < 0 {
				if res.Routed[u] {
					res.Routed[u] = false
					res.NextHop[u] = -1
					changed = true
				}
				continue
			}
			nh := g.Arcs[bestArc].To
			if !res.Routed[u] || res.Weight[u] != best || res.NextHop[u] != nh {
				changed = true
				res.Routed[u] = true
				res.Weight[u] = best
				res.NextHop[u] = nh
			}
		}
		res.Rounds = round
		if !changed {
			res.Converged = true
			return res
		}
	}
	return res
}

// Dijkstra runs the generalized Dijkstra over compiled tables.
// Semantics match solve.Dijkstra.
func (c *Compiled) Dijkstra(g *graph.Graph, dest, originIdx int) *Result {
	res := &Result{
		Dest:    dest,
		Routed:  make([]bool, g.N),
		Weight:  make([]int, g.N),
		NextHop: make([]int, g.N),
	}
	for i := range res.NextHop {
		res.NextHop[i] = -1
	}
	res.Routed[dest] = true
	res.Weight[dest] = originIdx
	settled := make([]bool, g.N)
	for rounds := 0; ; rounds++ {
		u := -1
		for v := 0; v < g.N; v++ {
			if settled[v] || !res.Routed[v] {
				continue
			}
			if u < 0 || c.LtBits[res.Weight[v]*c.N+res.Weight[u]] == 1 {
				u = v
			}
		}
		if u < 0 {
			res.Rounds = rounds
			res.Converged = true
			return res
		}
		settled[u] = true
		for _, ai := range g.In(u) {
			p := g.Arcs[ai].From
			if settled[p] {
				continue
			}
			cand := int(c.Fn[g.Arcs[ai].Label][res.Weight[u]])
			if !res.Routed[p] || c.LtBits[cand*c.N+res.Weight[p]] == 1 {
				res.Routed[p] = true
				res.Weight[p] = cand
				res.NextHop[p] = u
			}
		}
	}
}
