package compile

import (
	"fmt"

	"metarouting/internal/bsg"
	"metarouting/internal/value"
)

// MaxBisemigroupCarrier caps compiled bisemigroups. Both binary ops need
// a full n×n int32 table (8·n² bytes for the pair), so the ceiling sits
// below the order-transform cap: 2048² ≈ 4.2M entries ≈ 33 MB total.
const MaxBisemigroupCarrier = 1 << 11

// CompiledBisemigroup is a finite bisemigroup (S, ⊕, ⊗) in dense-table
// form: carrier elements are indices and both operations are lookups.
type CompiledBisemigroup struct {
	// N is the carrier size; weights are indices 0..N-1.
	N int
	// Elems maps index → original value; Index is the inverse.
	Elems []value.V
	Index map[value.V]int
	// AddTab[a*N+b] = a ⊕ b; MulTab likewise for ⊗.
	AddTab, MulTab []int32
}

// NewBisemigroup compiles a finite bisemigroup. It fails on infinite
// carriers, on carriers above MaxBisemigroupCarrier, and when either
// operation maps outside the carrier (the ops must be closed for the
// table form to exist).
func NewBisemigroup(b *bsg.Bisemigroup) (*CompiledBisemigroup, error) {
	if !b.Finite() {
		return nil, fmt.Errorf("compile: %s is not finitely enumerable", b.Name)
	}
	n := b.Carrier().Size()
	if n > MaxBisemigroupCarrier {
		return nil, fmt.Errorf("compile: carrier of %s too large (%d elements)", b.Name, n)
	}
	c := &CompiledBisemigroup{
		N:      n,
		Elems:  append([]value.V(nil), b.Carrier().Elems...),
		Index:  make(map[value.V]int, n),
		AddTab: make([]int32, n*n),
		MulTab: make([]int32, n*n),
	}
	for i, e := range c.Elems {
		c.Index[e] = i
	}
	for a := 0; a < n; a++ {
		for bb := 0; bb < n; bb++ {
			sum := b.Add.Op(c.Elems[a], c.Elems[bb])
			si, ok := c.Index[sum]
			if !ok {
				return nil, fmt.Errorf("compile: ⊕ of %s maps (%s, %s) outside the carrier",
					b.Name, value.Format(c.Elems[a]), value.Format(c.Elems[bb]))
			}
			prod := b.Mul.Op(c.Elems[a], c.Elems[bb])
			pi, ok := c.Index[prod]
			if !ok {
				return nil, fmt.Errorf("compile: ⊗ of %s maps (%s, %s) outside the carrier",
					b.Name, value.Format(c.Elems[a]), value.Format(c.Elems[bb]))
			}
			c.AddTab[a*n+bb] = int32(si)
			c.MulTab[a*n+bb] = int32(pi)
		}
	}
	return c, nil
}

// Add returns a ⊕ b on compiled indices.
func (c *CompiledBisemigroup) Add(a, b int32) int32 { return c.AddTab[int(a)*c.N+int(b)] }

// Mul returns a ⊗ b on compiled indices.
func (c *CompiledBisemigroup) Mul(a, b int32) int32 { return c.MulTab[int(a)*c.N+int(b)] }
