package compile

import (
	"container/heap"

	"metarouting/internal/graph"
)

// DijkstraHeap is Dijkstra over compiled tables with a binary-heap
// frontier (lazy deletion) instead of the O(N²) linear settle scan —
// O((N+M) log N) table lookups. Correctness requirements are identical
// to Dijkstra: M ∧ ND over a total preorder.
func (c *Compiled) DijkstraHeap(g *graph.Graph, dest, originIdx int) *Result {
	res := &Result{
		Dest:    dest,
		Routed:  make([]bool, g.N),
		Weight:  make([]int, g.N),
		NextHop: make([]int, g.N),
	}
	for i := range res.NextHop {
		res.NextHop[i] = -1
	}
	res.Routed[dest] = true
	res.Weight[dest] = originIdx

	settled := make([]bool, g.N)
	h := &frontier{c: c}
	heap.Push(h, frontierItem{node: dest, weight: originIdx})
	rounds := 0
	for h.Len() > 0 {
		it := heap.Pop(h).(frontierItem)
		u := it.node
		if settled[u] || !res.Routed[u] || res.Weight[u] != it.weight {
			continue // stale entry (lazy deletion)
		}
		settled[u] = true
		rounds++
		for _, ai := range g.In(u) {
			p := g.Arcs[ai].From
			if settled[p] {
				continue
			}
			cand := int(c.Fn[g.Arcs[ai].Label][res.Weight[u]])
			if !res.Routed[p] || c.LtBits[cand*c.N+res.Weight[p]] == 1 {
				res.Routed[p] = true
				res.Weight[p] = cand
				res.NextHop[p] = u
				heap.Push(h, frontierItem{node: p, weight: cand})
			}
		}
	}
	res.Rounds = rounds
	res.Converged = true
	return res
}

type frontierItem struct {
	node, weight int
}

// frontier orders items by the compiled strictness matrix. Equivalent
// weights compare equal, which a binary heap handles fine.
type frontier struct {
	c     *Compiled
	items []frontierItem
}

func (f *frontier) Len() int { return len(f.items) }
func (f *frontier) Less(i, j int) bool {
	return f.c.LtBits[f.items[i].weight*f.c.N+f.items[j].weight] == 1
}
func (f *frontier) Swap(i, j int) { f.items[i], f.items[j] = f.items[j], f.items[i] }
func (f *frontier) Push(x any)    { f.items = append(f.items, x.(frontierItem)) }
func (f *frontier) Pop() any {
	old := f.items
	n := len(old)
	it := old[n-1]
	f.items = old[:n-1]
	return it
}
