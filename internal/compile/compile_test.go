package compile

import (
	"math/rand"
	"testing"

	"metarouting/internal/core"
	"metarouting/internal/graph"
	"metarouting/internal/ost"
	"metarouting/internal/solve"
)

func alg(t testing.TB, src string) *ost.OrderTransform {
	t.Helper()
	a, err := core.InferString(src)
	if err != nil {
		t.Fatal(err)
	}
	return a.OT
}

func TestCompileTables(t *testing.T) {
	a := alg(t, "delay(8,2)")
	c, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 9 || len(c.Fn) != 2 {
		t.Fatalf("shape: N=%d fns=%d", c.N, len(c.Fn))
	}
	// +1 saturating: index of value v is v for Ints carriers.
	if c.Apply(0, 3) != 4 || c.Apply(0, 8) != 8 {
		t.Fatal("+1 table wrong")
	}
	if !c.Leq(2, 5) || c.Leq(5, 2) || !c.Lt(2, 5) || c.Lt(2, 2) {
		t.Fatal("order tables wrong")
	}
}

func TestCompileRejectsInfinite(t *testing.T) {
	if _, err := New(alg(t, "delay(0,2)")); err == nil {
		t.Fatal("infinite carriers must be rejected")
	}
}

// TestCompiledSolversMatchDynamic cross-validates compiled Dijkstra and
// Bellman–Ford against the dynamic solvers on random graphs and several
// algebras, including pair-carrier products.
func TestCompiledSolversMatchDynamic(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, src := range []string{"delay(64,3)", "bw(8)", "lex(bw(4), delay(8,2))", "scoped(bw(3), delay(6,2))"} {
		a := alg(t, src)
		c, err := New(a)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		// Origin: the order's ⊥ if present, else the first element.
		origin := a.Carrier().Elems[0]
		if b, ok := a.Ord.Bot(); ok {
			origin = b
		}
		originIdx := c.Index[origin]
		for trial := 0; trial < 8; trial++ {
			g := graph.Random(r, 9, 0.3, graph.UniformLabels(len(a.F.Fns)))

			dyn := solve.BellmanFord(a, g, 0, origin, 0)
			cmp := c.BellmanFord(g, 0, originIdx, 0)
			if dyn.Converged != cmp.Converged {
				t.Fatalf("%s trial %d: BF convergence differs", src, trial)
			}
			for u := 0; u < g.N; u++ {
				if dyn.Routed[u] != cmp.Routed[u] {
					t.Fatalf("%s trial %d node %d: BF routedness differs", src, trial, u)
				}
				if dyn.Routed[u] && dyn.Weights[u] != c.Elems[cmp.Weight[u]] {
					t.Fatalf("%s trial %d node %d: BF %v vs %v", src, trial, u,
						dyn.Weights[u], c.Elems[cmp.Weight[u]])
				}
			}

			dynD := solve.Dijkstra(a, g, 0, origin)
			cmpD := c.Dijkstra(g, 0, originIdx)
			for u := 0; u < g.N; u++ {
				if dynD.Routed[u] != cmpD.Routed[u] {
					t.Fatalf("%s trial %d node %d: Dijkstra routedness differs", src, trial, u)
				}
				if dynD.Routed[u] && dynD.Weights[u] != c.Elems[cmpD.Weight[u]] {
					t.Fatalf("%s trial %d node %d: Dijkstra %v vs %v", src, trial, u,
						dynD.Weights[u], c.Elems[cmpD.Weight[u]])
				}
			}
		}
	}
}

func TestCompiledNextHopsLoopFree(t *testing.T) {
	a := alg(t, "delay(64,3)")
	c, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(32))
	g := graph.Random(r, 12, 0.25, graph.UniformLabels(3))
	res := c.BellmanFord(g, 0, 0, 0)
	for u := 0; u < g.N; u++ {
		if !res.Routed[u] {
			continue
		}
		seen := map[int]bool{}
		v := u
		for v != 0 {
			if seen[v] {
				t.Fatalf("loop at %d", u)
			}
			seen[v] = true
			v = res.NextHop[v]
			if v < 0 {
				t.Fatalf("broken chain at %d", u)
			}
		}
	}
}

// TestDijkstraHeapMatchesScan: the heap frontier and the linear scan
// agree on weights and routedness across algebras and random graphs.
func TestDijkstraHeapMatchesScan(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for _, src := range []string{"delay(64,3)", "bw(8)", "lex(delay(8,2), bw(4))"} {
		a := alg(t, src)
		c, err := New(a)
		if err != nil {
			t.Fatal(err)
		}
		origin := a.Carrier().Elems[0]
		if b, ok := a.Ord.Bot(); ok {
			origin = b
		}
		oi := c.Index[origin]
		for trial := 0; trial < 10; trial++ {
			g := graph.Random(r, 12, 0.25, graph.UniformLabels(len(a.F.Fns)))
			scan := c.Dijkstra(g, 0, oi)
			hp := c.DijkstraHeap(g, 0, oi)
			for u := 0; u < g.N; u++ {
				if scan.Routed[u] != hp.Routed[u] {
					t.Fatalf("%s trial %d node %d: routedness differs", src, trial, u)
				}
				if scan.Routed[u] && scan.Weight[u] != hp.Weight[u] {
					// Weights may differ up to order-equivalence; compare
					// through the strictness matrix.
					if c.Lt(scan.Weight[u], hp.Weight[u]) || c.Lt(hp.Weight[u], scan.Weight[u]) {
						t.Fatalf("%s trial %d node %d: %v vs %v", src, trial, u,
							c.Elems[scan.Weight[u]], c.Elems[hp.Weight[u]])
					}
				}
			}
		}
	}
}

// TestCompiledScale routes a 5000-node scale-free network with the
// compiled solver — the "does it hold up at size" smoke (skipped in
// -short runs).
func TestCompiledScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	a := alg(t, "delay(4095,4)")
	c, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	g := graph.ScaleFree(r, 5000, 2, graph.UniformLabels(4))
	res := c.DijkstraHeap(g, 0, 0)
	routed := 0
	for _, ok := range res.Routed {
		if ok {
			routed++
		}
	}
	if routed != g.N {
		t.Fatalf("only %d/%d nodes routed", routed, g.N)
	}
	bf := c.BellmanFord(g, 0, 0, 0)
	if !bf.Converged {
		t.Fatal("BF must converge at scale")
	}
	for u := 0; u < g.N; u += 97 {
		if res.Weight[u] != bf.Weight[u] {
			t.Fatalf("node %d: heap %d vs bf %d", u, res.Weight[u], bf.Weight[u])
		}
	}
}
