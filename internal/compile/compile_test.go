package compile

import (
	"testing"

	"metarouting/internal/baselib"
	"metarouting/internal/core"
	"metarouting/internal/ost"
)

// Solver-level correctness of the compiled form (compiled vs dynamic
// equivalence on every algorithm) lives in the engine differential tests
// of internal/exec; this file checks the tables themselves.

func alg(t testing.TB, src string) *ost.OrderTransform {
	t.Helper()
	a, err := core.InferString(src)
	if err != nil {
		t.Fatal(err)
	}
	return a.OT
}

func TestCompileTables(t *testing.T) {
	a := alg(t, "delay(8,2)")
	c, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 9 || len(c.Fn) != 2 {
		t.Fatalf("shape: N=%d fns=%d", c.N, len(c.Fn))
	}
	// +1 saturating: index of value v is v for Ints carriers.
	if c.Apply(0, 3) != 4 || c.Apply(0, 8) != 8 {
		t.Fatal("+1 table wrong")
	}
	if !c.Leq(2, 5) || c.Leq(5, 2) || !c.Lt(2, 5) || c.Lt(2, 2) {
		t.Fatal("order tables wrong")
	}
}

func TestCompileRejectsInfinite(t *testing.T) {
	if _, err := New(alg(t, "delay(0,2)")); err == nil {
		t.Fatal("infinite carriers must be rejected")
	}
}

func TestCompilePairCarrier(t *testing.T) {
	a := alg(t, "lex(bw(4), delay(8,2))")
	c, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	if c.N != a.Carrier().Size() {
		t.Fatalf("carrier size: %d vs %d", c.N, a.Carrier().Size())
	}
	// Round-trip every element through the index and spot-check the order
	// tables against the dynamic preorder.
	for i, e := range c.Elems {
		if c.Index[e] != i {
			t.Fatalf("index round-trip broken at %d", i)
		}
	}
	for i := 0; i < c.N; i += 3 {
		for j := 0; j < c.N; j += 5 {
			if c.Leq(i, j) != a.Ord.Leq(c.Elems[i], c.Elems[j]) {
				t.Fatalf("Leq(%d,%d) disagrees with dynamic order", i, j)
			}
		}
	}
}

func TestBisemigroupTables(t *testing.T) {
	b := baselib.MinPlus(64)
	c, err := NewBisemigroup(b)
	if err != nil {
		t.Fatal(err)
	}
	xi, okX := c.Index[3]
	yi, okY := c.Index[5]
	if !okX || !okY {
		t.Fatal("carrier elements missing from index")
	}
	x, y := int32(xi), int32(yi)
	if got := c.Elems[c.Add(x, y)]; got != b.Add.Op(3, 5) {
		t.Fatalf("⊕ table: got %v want %v", got, b.Add.Op(3, 5))
	}
	if got := c.Elems[c.Mul(x, y)]; got != b.Mul.Op(3, 5) {
		t.Fatalf("⊗ table: got %v want %v", got, b.Mul.Op(3, 5))
	}
}

func TestBisemigroupRejectsOversize(t *testing.T) {
	if _, err := NewBisemigroup(baselib.MinPlus(MaxBisemigroupCarrier + 8)); err == nil {
		t.Fatal("oversize bisemigroup carriers must be rejected")
	}
}
