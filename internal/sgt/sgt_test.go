package sgt

import (
	"math/rand"
	"testing"

	"metarouting/internal/fn"
	"metarouting/internal/gen"
	"metarouting/internal/prop"
	"metarouting/internal/sg"
	"metarouting/internal/value"
)

func minSG(cap int) *sg.Semigroup {
	s := sg.New("min", value.Ints(0, cap), func(a, b value.V) value.V {
		if a.(int) < b.(int) {
			return a
		}
		return b
	})
	s.WithIdentity(cap)
	return s
}

func boundedDist(n int) *SemigroupTransform {
	fns := make([]fn.Fn, 0, n+1)
	for y := 0; y <= n; y++ {
		y := y
		fns = append(fns, fn.Fn{Name: "+?", Apply: func(v value.V) value.V {
			x := v.(int) + y
			if x > n {
				x = n
			}
			return x
		}})
	}
	return New("bdist", minSG(n), fn.NewFinite("F", fns))
}

func TestBoundedDistProperties(t *testing.T) {
	b := boundedDist(4)
	b.CheckAll(nil, 0)
	if !b.Props.Holds(prop.MLeft) {
		t.Fatal("min(n, x+y) is a min-homomorphism")
	}
	if !b.Props.Fails(prop.NLeft) {
		t.Fatal("§VI: the ceiling kills injectivity")
	}
	if !b.Props.Holds(prop.NDLeft) {
		t.Fatal("a = min(a, a+y)")
	}
	if !b.Props.Fails(prop.ILeft) {
		t.Fatal("+0 forbids increasing")
	}
}

func TestCayleyFromBisemigroup(t *testing.T) {
	min := minSG(4)
	tr := FromBisemigroup("cayley", min, func(a, b value.V) value.V {
		s := a.(int) + b.(int)
		if s > 4 {
			s = 4
		}
		return s
	})
	if tr.F.Size() != 5 {
		t.Fatalf("Cayley set size = %d", tr.F.Size())
	}
	st, w := tr.CheckM(nil, 0)
	if st != prop.True {
		t.Fatalf("Cayley of a distributive ⊗ must be homomorphic: %s", w)
	}
}

func randSGT(r *rand.Rand) *SemigroupTransform {
	add := gen.CISemigroup(r, 2+r.Intn(3))
	n := add.Car.Size()
	return New("rnd", add, gen.FnSet(r, n, 1+r.Intn(3)))
}

func propsOf(s *SemigroupTransform) map[prop.ID]prop.Status {
	out := map[prop.ID]prop.Status{}
	st, _ := s.CheckM(nil, 0)
	out[prop.MLeft] = st
	st, _ = s.CheckN(nil, 0)
	out[prop.NLeft] = st
	st, _ = s.CheckC(nil, 0)
	out[prop.CLeft] = st
	st, _ = s.CheckND(nil, 0)
	out[prop.NDLeft] = st
	st, _ = s.CheckI(nil, 0)
	out[prop.ILeft] = st
	return out
}

// alphaFixed reports whether every f fixes α_T — needed for the
// α-injection case when the first factor's ⊕ is not selective, the
// transform analogue of the semiring "α absorbs ⊗" axiom.
func alphaFixed(s *SemigroupTransform) bool {
	alpha, ok := s.Add.Identity()
	if !ok {
		return false
	}
	for _, f := range s.F.Fns {
		if f.Apply(alpha) != alpha {
			return false
		}
	}
	return true
}

// TestTheorem4RandomValidation machine-checks
// M(S×T) ⟺ M(S)∧M(T)∧(N(S)∨C(T)) for semigroup transforms, where M is
// the homomorphism property, in the pure setting (selective first factor
// or α-fixing second factor).
func TestTheorem4RandomValidation(t *testing.T) {
	r := rand.New(rand.NewSource(201))
	trials := 0
	for trials < 250 {
		s, u := randSGT(r), randSGT(r)
		if st, _ := s.Add.CheckSelective(nil, 0); st != prop.True && !alphaFixed(u) {
			continue
		}
		prod, err := Lex(s, u)
		if err != nil {
			continue
		}
		trials++
		ps, pt := propsOf(s), propsOf(u)
		lhs, w := prod.CheckM(nil, 0)
		rhs := prop.And(prop.And(ps[prop.MLeft], pt[prop.MLeft]),
			prop.Or(ps[prop.NLeft], pt[prop.CLeft]))
		if lhs != rhs {
			t.Fatalf("trial %d: M(S×T)=%v but rule says %v (witness %q)", trials, lhs, rhs, w)
		}
	}
}

// TestTheorem5RandomValidation machine-checks the paper-literal
// local-optima rules — the quadrant the paper's own proof is given in:
//
//	ND(S×T) ⟺ I(S) ∨ (ND(S)∧ND(T))
//	I(S×T)  ⟺ I(S) ∨ (ND(S)∧I(T))
func TestTheorem5RandomValidation(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	trials := 0
	for trials < 300 {
		s, u := randSGT(r), randSGT(r)
		prod, err := Lex(s, u)
		if err != nil {
			continue
		}
		trials++
		ps, pt := propsOf(s), propsOf(u)
		ndLHS, w := prod.CheckND(nil, 0)
		ndRHS := prop.Or(ps[prop.ILeft], prop.And(ps[prop.NDLeft], pt[prop.NDLeft]))
		if ndLHS != ndRHS {
			t.Fatalf("trial %d: ND(S×T)=%v but I(S)∨(ND∧ND)=%v (witness %q)", trials, ndLHS, ndRHS, w)
		}
		iLHS, w := prod.CheckI(nil, 0)
		iRHS := prop.Or(ps[prop.ILeft], prop.And(ps[prop.NDLeft], pt[prop.ILeft]))
		if iLHS != iRHS {
			t.Fatalf("trial %d: I(S×T)=%v but I(S)∨(ND∧I)=%v (witness %q)", trials, iLHS, iRHS, w)
		}
	}
}

// TestSIGCOMMSufficientConditions validates the three sufficient rules of
// the original metarouting paper quoted in §II, as implications (not
// iffs), over random structures — including ones whose lex product needs
// the α-injection case.
func TestSIGCOMMSufficientConditions(t *testing.T) {
	r := rand.New(rand.NewSource(203))
	trials := 0
	for trials < 300 {
		s, u := randSGT(r), randSGT(r)
		prod, err := Lex(s, u)
		if err != nil {
			continue
		}
		trials++
		ps, pt := propsOf(s), propsOf(u)
		ndProd, _ := prod.CheckND(nil, 0)
		iProd, _ := prod.CheckI(nil, 0)
		// ND(S)∧ND(T) ⇒ ND(S×T).
		if ps[prop.NDLeft] == prop.True && pt[prop.NDLeft] == prop.True && ndProd != prop.True {
			t.Fatalf("trial %d: ND∧ND must imply ND of the product", trials)
		}
		// I(S) ⇒ I(S×T); ND(S)∧I(T) ⇒ I(S×T).
		if ps[prop.ILeft] == prop.True && iProd != prop.True {
			t.Fatalf("trial %d: I(S) must imply I of the product", trials)
		}
		if ps[prop.NDLeft] == prop.True && pt[prop.ILeft] == prop.True && iProd != prop.True {
			t.Fatalf("trial %d: ND(S)∧I(T) must imply I of the product", trials)
		}
	}
}

func TestLexUndefinedWithoutSideCondition(t *testing.T) {
	and := sg.New("and", value.Ints(0, 3), func(a, b value.V) value.V { return a.(int) & b.(int) })
	noID := sg.New("max+1", value.Ints(0, 3), func(a, b value.V) value.V {
		m := a.(int)
		if b.(int) > m {
			m = b.(int)
		}
		if m < 3 {
			m++
		}
		return m
	})
	s := New("S", and, fn.IdentityOnly())
	u := New("T", noID, fn.IdentityOnly())
	if _, err := Lex(s, u); err == nil {
		t.Fatal("lex must be undefined")
	}
}

func TestCheckAllPopulates(t *testing.T) {
	b := boundedDist(3)
	b.CheckAll(nil, 0)
	for _, id := range []prop.ID{prop.MLeft, prop.NLeft, prop.CLeft, prop.NDLeft, prop.ILeft} {
		if b.Props.Status(id) == prop.Unknown {
			t.Fatalf("%s undecided", id)
		}
	}
	if !b.Add.Props.Holds(prop.Selective) {
		t.Fatal("⊕ properties must be populated")
	}
}

// maxMonoidTransform is a small T operand for the ×ω probes.
func maxMonoidTransform() *SemigroupTransform {
	mx := sg.New("max", value.Ints(0, 3), func(a, b value.V) value.V {
		if a.(int) >= b.(int) {
			return a
		}
		return b
	})
	mx.WithIdentity(0)
	return New("T", mx, fn.NewFinite("G", []fn.Fn{
		fn.Identity(),
		{Name: "+1c", Apply: func(v value.V) value.V {
			x := v.(int) + 1
			if x > 3 {
				x = 3
			}
			return x
		}},
	}))
}

// TestSzendreiTransformRestoresM explores the ×lex/×ω relationship the
// paper's §VI leaves open, with the bounded-dist example it motivates:
//
//   - plain ×lex fails M exactly through the ceiling (¬N(bd), Theorem 4);
//   - Szendrei-literal ×ω (ω absorbing) STILL fails M — one collapsed
//     route poisons the whole sum;
//   - the discard variant (ω as ⊕-identity: errored routes are dropped
//     from summarization) restores M while staying associative, commutative
//     and idempotent.
//
// The discard variant is thus the routing-meaningful reading of "if n
// ever arises the entire expression will be reduced to ω".
func TestSzendreiTransformRestoresM(t *testing.T) {
	bd := boundedDist(4)
	tt := maxMonoidTransform()

	lex, err := Lex(bd, tt)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := lex.CheckM(nil, 0); st != prop.False {
		t.Fatal("plain lex must fail M through the ceiling")
	}

	absorb, err := SzendreiLex(bd, tt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := absorb.CheckM(nil, 0); st != prop.False {
		t.Fatal("absorbing-ω ×ω still fails M (collapse poisons sums)")
	}
	if w, ok := absorb.Add.Absorber(); !ok || w != value.V(value.Omega{}) {
		t.Fatal("ω must absorb in the literal variant")
	}

	discard, err := SzendreiLexDiscard(bd, tt, 4)
	if err != nil {
		t.Fatal(err)
	}
	st, w := discard.CheckM(nil, 0)
	if st != prop.True {
		t.Fatalf("discard-ω ×ω must restore M: %s", w)
	}
	for _, check := range []func(*rand.Rand, int) (prop.Status, string){
		discard.Add.CheckAssociative, discard.Add.CheckCommutative, discard.Add.CheckIdempotent,
	} {
		if st, w := check(nil, 0); st != prop.True {
			t.Fatalf("discard variant must stay CI: %s", w)
		}
	}
	if e, ok := discard.Add.Identity(); !ok || e != value.V(value.Omega{}) {
		t.Fatal("ω must be the identity in the discard variant")
	}
}

// TestSzendreiTransformCollapse: function application hitting the error
// element collapses the whole weight, in both variants.
func TestSzendreiTransformCollapse(t *testing.T) {
	bd := boundedDist(4)
	tt := maxMonoidTransform()
	for _, build := range []func(*SemigroupTransform, *SemigroupTransform, value.V) (*SemigroupTransform, error){
		SzendreiLex, SzendreiLexDiscard,
	} {
		z, err := build(bd, tt, 4)
		if err != nil {
			t.Fatal(err)
		}
		// Find a function applying +2 on the S side; at s=3, 3+2 hits the
		// ceiling 4 = errS.
		collapsed := false
		for _, f := range z.F.Fns {
			got := f.Apply(value.Pair{A: 3, B: 0})
			if got == value.V(value.Omega{}) {
				collapsed = true
			}
		}
		if !collapsed {
			t.Fatal("some function must drive 3 into the ceiling and collapse")
		}
		// The carrier excludes errS pairs.
		for _, e := range z.Carrier().Elems {
			if p, ok := e.(value.Pair); ok && p.A == 4 {
				t.Fatal("carrier must exclude error pairs")
			}
		}
	}
}
