// Package sgt implements semigroup transforms (S, ⊕, F) — the lower-left
// quadrant of the quadrants model: algebraic weight summarization with
// functional weight computation. Gondran–Minoux monoid endomorphism
// systems are the subclass whose functions are all ⊕-homomorphisms; the
// homomorphism condition is exactly the M property of Fig 2 and, as
// always, is inferred rather than required.
package sgt

import (
	"fmt"
	"math/rand"

	"metarouting/internal/fn"
	"metarouting/internal/prop"
	"metarouting/internal/sg"
	"metarouting/internal/value"
)

// SemigroupTransform is a structure (S, ⊕, F).
type SemigroupTransform struct {
	// Name is a diagnostic label.
	Name string
	// Add is the summarization semigroup ⊕.
	Add *sg.Semigroup
	// F is the set of arc functions S → S.
	F *fn.Set
	// Props caches property judgements.
	Props prop.Set
}

// New builds a semigroup transform.
func New(name string, add *sg.Semigroup, f *fn.Set) *SemigroupTransform {
	return &SemigroupTransform{Name: name, Add: add, F: f, Props: prop.Make()}
}

// Carrier returns the weight carrier.
func (t *SemigroupTransform) Carrier() *value.Carrier { return t.Add.Car }

// Finite reports whether exhaustive property checking is possible.
func (t *SemigroupTransform) Finite() bool { return t.Add.Car.Finite() && t.F.Finite() }

// Lex returns the lexicographic product S ×lex T (§IV): ⊕ is the
// lexicographic product of semigroups, F is the componentwise product of
// function sets. Defined when S.Add is selective or T.Add is a monoid.
func Lex(s, t *SemigroupTransform) (*SemigroupTransform, error) {
	add, err := sg.Lex(s.Add, t.Add)
	if err != nil {
		return nil, err
	}
	return New("("+s.Name+" ×lex "+t.Name+")", add, fn.Product(s.F, t.F)), nil
}

// SzendreiLex is the transform-level ×ω of §VI: the carrier is
// ((S∖{errS}) × T) ∪ {ω}, the summarization collapses a pair to ω
// whenever the S components combine to errS, and — the part the
// bounded-metric example needs — a product function (f, g) collapses the
// whole weight to ω whenever f(s) hits errS ("if n ever arises the
// entire expression will be reduced to ω"). ω is ⊕-absorbing and fixed
// by every function.
//
// The paper leaves the relationship between ×lex and ×ω unexplored; the
// tests probe it empirically (TestSzendreiTransformRestoresM).
func SzendreiLex(s, t *SemigroupTransform, errS value.V) (*SemigroupTransform, error) {
	return szendrei(s, t, errS, false)
}

// SzendreiLexDiscard is SzendreiLex with the routing-friendly variant
// semantics: ω acts as the ⊕-identity (an errored route is *discarded*
// from summarization) instead of absorbing. The tests compare the two —
// the paper's §VI distinction between "least preferred" and "error",
// measured.
func SzendreiLexDiscard(s, t *SemigroupTransform, errS value.V) (*SemigroupTransform, error) {
	return szendrei(s, t, errS, true)
}

func szendrei(s, t *SemigroupTransform, errS value.V, discard bool) (*SemigroupTransform, error) {
	inner, err := Lex(s, t)
	if err != nil {
		return nil, err
	}
	var car *value.Carrier
	if s.Add.Car.Finite() && t.Add.Car.Finite() {
		car = value.Adjoin(
			value.Product(value.Without(s.Add.Car, errS, s.Add.Car.Name+"∖ω"), t.Add.Car),
			value.Omega{},
			"(("+s.Add.Car.Name+"∖ω)×"+t.Add.Car.Name+")∪{ω}")
	} else {
		return nil, fmt.Errorf("sgt: transform ×ω requires finite carriers")
	}
	add := sg.New("("+s.Add.Name+" ×ω "+t.Add.Name+")", car, func(a, b value.V) value.V {
		if a == value.V(value.Omega{}) {
			if discard {
				return b
			}
			return value.Omega{}
		}
		if b == value.V(value.Omega{}) {
			if discard {
				return a
			}
			return value.Omega{}
		}
		x, y := a.(value.Pair), b.(value.Pair)
		if s.Add.Op(x.A, y.A) == errS {
			return value.Omega{}
		}
		return inner.Add.Op(a, b)
	})
	if discard {
		add.WithIdentity(value.Omega{})
	} else {
		add.WithAbsorber(value.Omega{})
	}
	if !s.F.Finite() || !t.F.Finite() {
		return nil, fmt.Errorf("sgt: transform ×ω requires finite function sets")
	}
	fns := make([]fn.Fn, 0, len(s.F.Fns)*len(t.F.Fns))
	for _, f := range s.F.Fns {
		for _, g := range t.F.Fns {
			f, g := f, g
			fns = append(fns, fn.Fn{
				Name: "(" + f.Name + "," + g.Name + ")ω",
				Apply: func(v value.V) value.V {
					if v == value.V(value.Omega{}) {
						return value.Omega{}
					}
					p := v.(value.Pair)
					fs := f.Apply(p.A)
					if fs == errS {
						return value.Omega{}
					}
					return value.Pair{A: fs, B: g.Apply(p.B)}
				},
			})
		}
	}
	return New("("+s.Name+" ×ω "+t.Name+")", add, fn.NewFinite("Fω", fns)), nil
}

// FromBisemigroup is the Cayley construction (§III): (S, ⊕, ⊗) becomes
// (S, ⊕, {λy. x⊗y | x ∈ S}).
func FromBisemigroup(name string, add *sg.Semigroup, mulOp func(a, b value.V) value.V) *SemigroupTransform {
	return New(name, add, fn.Cayley("F_"+name, add.Car, mulOp))
}

// forAll enumerates (function, n-tuple) combinations (finite) or samples
// them (infinite).
func (t *SemigroupTransform) forAll(r *rand.Rand, samples, n int,
	pred func(f fn.Fn, xs []value.V) (bool, string)) (prop.Status, string) {
	if t.Finite() {
		xs := make([]value.V, n)
		var rec func(f fn.Fn, i int) (prop.Status, string)
		rec = func(f fn.Fn, i int) (prop.Status, string) {
			if i == n {
				if ok, w := pred(f, xs); !ok {
					return prop.False, w
				}
				return prop.True, ""
			}
			for _, e := range t.Add.Car.Elems {
				xs[i] = e
				if st, w := rec(f, i+1); st == prop.False {
					return st, w
				}
			}
			return prop.True, ""
		}
		for _, f := range t.F.Fns {
			if st, w := rec(f, 0); st == prop.False {
				return st, w
			}
		}
		return prop.True, ""
	}
	if r == nil {
		return prop.Unknown, ""
	}
	xs := make([]value.V, n)
	for i := 0; i < samples; i++ {
		f := t.F.Draw(r)
		for j := range xs {
			xs[j] = t.Add.Car.Draw(r)
		}
		if ok, w := pred(f, xs); !ok {
			return prop.False, w
		}
	}
	return prop.Unknown, ""
}

// CheckM verifies the homomorphism property, M of Fig 2:
// f(a⊕b) = f(a) ⊕ f(b).
func (t *SemigroupTransform) CheckM(r *rand.Rand, samples int) (prop.Status, string) {
	return t.forAll(r, samples, 2, func(f fn.Fn, xs []value.V) (bool, string) {
		a, b := xs[0], xs[1]
		lhs := f.Apply(t.Add.Op(a, b))
		rhs := t.Add.Op(f.Apply(a), f.Apply(b))
		if lhs != rhs {
			return false, fmt.Sprintf("f=%s a=%s b=%s: f(a⊕b)=%s ≠ f(a)⊕f(b)=%s",
				f.Name, value.Format(a), value.Format(b), value.Format(lhs), value.Format(rhs))
		}
		return true, ""
	})
}

// CheckN verifies injectivity, N of Fig 2: f(a) = f(b) ⇒ a = b.
func (t *SemigroupTransform) CheckN(r *rand.Rand, samples int) (prop.Status, string) {
	return t.forAll(r, samples, 2, func(f fn.Fn, xs []value.V) (bool, string) {
		a, b := xs[0], xs[1]
		if f.Apply(a) == f.Apply(b) && a != b {
			return false, fmt.Sprintf("f=%s a=%s b=%s: f(a) = f(b) but a ≠ b",
				f.Name, value.Format(a), value.Format(b))
		}
		return true, ""
	})
}

// CheckC verifies constancy, C of Fig 2: f(a) = f(b) always.
func (t *SemigroupTransform) CheckC(r *rand.Rand, samples int) (prop.Status, string) {
	return t.forAll(r, samples, 2, func(f fn.Fn, xs []value.V) (bool, string) {
		a, b := xs[0], xs[1]
		if f.Apply(a) != f.Apply(b) {
			return false, fmt.Sprintf("f=%s a=%s b=%s: f(a) ≠ f(b)",
				f.Name, value.Format(a), value.Format(b))
		}
		return true, ""
	})
}

// CheckND verifies nondecreasing (Fig 3): a = a ⊕ f(a).
func (t *SemigroupTransform) CheckND(r *rand.Rand, samples int) (prop.Status, string) {
	return t.forAll(r, samples, 1, func(f fn.Fn, xs []value.V) (bool, string) {
		a := xs[0]
		if t.Add.Op(a, f.Apply(a)) != a {
			return false, fmt.Sprintf("f=%s a=%s: a ≠ a ⊕ f(a)", f.Name, value.Format(a))
		}
		return true, ""
	})
}

// CheckI verifies increasing (Fig 3): a = a ⊕ f(a) ≠ f(a).
func (t *SemigroupTransform) CheckI(r *rand.Rand, samples int) (prop.Status, string) {
	return t.forAll(r, samples, 1, func(f fn.Fn, xs []value.V) (bool, string) {
		a := xs[0]
		v := f.Apply(a)
		if t.Add.Op(a, v) != a || a == v {
			return false, fmt.Sprintf("f=%s a=%s: ¬(a = a ⊕ f(a) ≠ f(a))", f.Name, value.Format(a))
		}
		return true, ""
	})
}

// CheckAll populates Props with judgements for M, N, C, ND and I, plus
// the ⊕ semigroup-level properties.
func (t *SemigroupTransform) CheckAll(r *rand.Rand, samples int) {
	record := func(id prop.ID, st prop.Status, w string) {
		if cur := t.Props.Get(id); cur.Status != prop.Unknown && st == prop.Unknown {
			return
		}
		rule := "model-check"
		if st == prop.Unknown {
			rule = "sampled"
		}
		t.Props.Put(id, prop.Judgement{Status: st, Rule: rule, Witness: w})
	}
	st, w := t.CheckM(r, samples)
	record(prop.MLeft, st, w)
	st, w = t.CheckN(r, samples)
	record(prop.NLeft, st, w)
	st, w = t.CheckC(r, samples)
	record(prop.CLeft, st, w)
	st, w = t.CheckND(r, samples)
	record(prop.NDLeft, st, w)
	st, w = t.CheckI(r, samples)
	record(prop.ILeft, st, w)
	t.Add.CheckAll(r, samples)
}
