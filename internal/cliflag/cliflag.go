// Package cliflag holds the flag plumbing shared by the metaroute,
// mrexp and mrserve commands, so the execution-backend selection (and
// future cross-cutting flags) is declared and parsed in exactly one
// place.
package cliflag

import (
	"flag"

	"metarouting/internal/exec"
)

// Engine registers the standard -engine flag on fs (flag.CommandLine
// when nil) and returns the destination string.
func Engine(fs *flag.FlagSet) *string {
	if fs == nil {
		fs = flag.CommandLine
	}
	return fs.String("engine", "auto",
		"execution backend: auto (compile finite algebras, tier the rest), dynamic, compiled, or tiered")
}

// ApplyEngine validates the chosen -engine value, installs it as the
// process-wide default backend policy, and returns the mode. Call it
// once, right after flag.Parse.
func ApplyEngine(v string) (exec.Mode, error) {
	mode, err := exec.ParseMode(v)
	if err != nil {
		return "", err
	}
	exec.SetDefaultMode(mode)
	return mode, nil
}
