// Package telemetry is the observability layer shared by the solvers,
// the protocol simulator and the route-query service: lock-cheap
// counters and gauges, fixed-bucket latency histograms with atomic bins
// (mergeable, with percentile extraction shared with the load
// generator), a ring-buffer event tracer, and Prometheus text-format
// exposition via Registry.
//
// Everything here is safe for concurrent use and designed to be cheap
// enough for hot paths: a Counter increment is one atomic add, a
// Histogram observation is a short binary search plus three atomic
// adds, and instruments carry no names — naming happens once, at
// registration time, so the fast path never touches a map or a string.
package telemetry

import "sync/atomic"

// Counter is a monotonically increasing counter. The zero value is
// ready to use; embed it by value and share it by pointer.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n and returns the new count — callers use the returned
// ordinal for cheap modular sampling without a second atomic.
func (c *Counter) Add(n uint64) uint64 { return c.v.Add(n) }

// Load reads the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use.
type Gauge struct{ v atomic.Int64 }

// Set installs an absolute value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load reads the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
