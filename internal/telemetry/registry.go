package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry names instruments and renders them in the Prometheus text
// exposition format (version 0.0.4) — the format every Prometheus
// scraper and promtool accept. Instruments are registered once at
// setup; scrapes read their current values, so registration order and
// scrape concurrency never touch the hot path.
//
// A name may carry a fixed label set in braces — "flaps_total{dest=\"3\"}"
// — in which case HELP/TYPE lines are emitted once per base name.
type Registry struct {
	mu      sync.Mutex
	entries []entry
	byName  map[string]bool
	hooks   []func()

	// renderMu serializes scrapes so state a scrape hook pins for the
	// duration of one render is not clobbered by a concurrent scrape.
	renderMu sync.Mutex
}

type entry struct {
	name, help, typ string // typ: "counter", "gauge" or "histogram"
	read            func() float64
	hist            *Histogram
	scale           float64 // histogram sample → exposed unit divisor
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{byName: make(map[string]bool)} }

func (r *Registry) add(e entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[e.name] {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", e.name))
	}
	r.byName[e.name] = true
	r.entries = append(r.entries, e)
}

// AddCounter exposes c under name (conventionally ending in _total).
func (r *Registry) AddCounter(name, help string, c *Counter) {
	r.add(entry{name: name, help: help, typ: "counter", read: func() float64 { return float64(c.Load()) }})
}

// AddGauge exposes g under name.
func (r *Registry) AddGauge(name, help string, g *Gauge) {
	r.add(entry{name: name, help: help, typ: "gauge", read: func() float64 { return float64(g.Load()) }})
}

// AddGaugeFunc exposes a value computed at scrape time — for readings
// derived from existing state (snapshot version, topology size) that
// would be wasteful to mirror into a Gauge on every change.
func (r *Registry) AddGaugeFunc(name, help string, fn func() float64) {
	r.add(entry{name: name, help: help, typ: "gauge", read: fn})
}

// AddHistogram exposes h under name. Bucket edges and the sum are
// divided by scale (use 1e9 for nanosecond histograms exposed in
// seconds, Prometheus's base unit; ≤ 0 means 1).
func (r *Registry) AddHistogram(name, help string, h *Histogram, scale float64) {
	if scale <= 0 {
		scale = 1
	}
	r.add(entry{name: name, help: help, typ: "histogram", hist: h, scale: scale})
}

// AddScrapeHook registers fn to run at the start of every scrape,
// before any instrument is read. Gauge funcs derived from shared
// mutable state (an atomically swapped snapshot, say) are read lazily
// one after another, so a swap racing the scrape can make two gauges
// report different generations; a scrape hook lets the owner pin one
// generation for the whole render, and the registry serializes scrapes
// so the pin holds until the render finishes.
func (r *Registry) AddScrapeHook(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, fn)
}

// baseName strips a {label} suffix.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelPart returns the {label} suffix including braces, or "".
func labelPart(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[i:]
	}
	return ""
}

// WritePrometheus renders every registered instrument, sorted by name,
// with HELP/TYPE headers emitted once per metric family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.renderMu.Lock()
	defer r.renderMu.Unlock()
	r.mu.Lock()
	entries := append([]entry(nil), r.entries...)
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	seenFamily := make(map[string]bool)
	for _, e := range entries {
		base := baseName(e.name)
		if !seenFamily[base] {
			seenFamily[base] = true
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, e.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, e.typ); err != nil {
				return err
			}
		}
		if e.typ == "histogram" {
			if err := writeHistogram(w, base, labelPart(e.name), e.hist, e.scale); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", e.name, formatFloat(e.read())); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders the cumulative _bucket/_sum/_count triplet.
// labels is "" or a "{...}" suffix whose label set the le label joins.
func writeHistogram(w io.Writer, base, labels string, h *Histogram, scale float64) error {
	bounds := h.Bounds()
	bins := h.Bins()
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	leLabel := func(le string) string {
		if inner == "" {
			return fmt.Sprintf(`{le=%q}`, le)
		}
		return fmt.Sprintf(`{%s,le=%q}`, inner, le)
	}
	var cum uint64
	for i, b := range bounds {
		cum += bins[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, leLabel(formatFloat(float64(b)/scale)), cum); err != nil {
			return err
		}
	}
	cum += bins[len(bins)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, leLabel("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, labels, formatFloat(float64(h.Sum())/scale)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labels, h.Count())
	return err
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Handler serves the registry at an HTTP endpoint (mount it at
// /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck — client gone mid-scrape
	})
}
