package telemetry

import (
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter: got %d, want 5", c.Load())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Load() != 4 {
		t.Fatalf("gauge: got %d, want 4", g.Load())
	}
}

// TestHistogramBuckets: samples exactly on a bound land in that bound's
// bucket (Prometheus le semantics), one past it in the next.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 40})
	for _, v := range []int64{0, 10, 11, 20, 21, 40, 41, 1000} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2, 2} // (≤10)=2 {0,10}, (≤20)=2 {11,20}, (≤40)=2 {21,40}, +Inf=2 {41,1000}
	if got := h.Bins(); !reflect.DeepEqual(got, want) {
		t.Fatalf("bins: got %v, want %v", got, want)
	}
	if h.Count() != 8 || h.Sum() != 0+10+11+20+21+40+41+1000 {
		t.Fatalf("count/sum wrong: %d / %d", h.Count(), h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 40})
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile: got %v, want 0", q)
	}
	h.Observe(15)
	// A single sample answers within its bucket for every p.
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if q := h.Quantile(p); q <= 10 || q > 20 {
			t.Fatalf("single-sample quantile(%v) = %v, want in (10,20]", p, q)
		}
	}
	// Fill the first bucket heavily: the median must interpolate there.
	for i := 0; i < 99; i++ {
		h.Observe(5)
	}
	if q := h.Quantile(0.5); q <= 0 || q > 10 {
		t.Fatalf("quantile(0.5) = %v, want in (0,10]", q)
	}
	// Overflow samples clamp to the largest finite bound.
	o := NewHistogram([]int64{10})
	o.Observe(1_000_000)
	if q := o.Quantile(0.99); q != 10 {
		t.Fatalf("overflow quantile: got %v, want 10", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]int64{10, 20})
	b := NewHistogram([]int64{10, 20})
	a.Observe(5)
	b.Observe(15)
	b.Observe(25)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got, want := a.Bins(), []uint64{1, 1, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("merged bins: got %v, want %v", got, want)
	}
	if a.Count() != 3 || a.Sum() != 45 {
		t.Fatalf("merged count/sum: %d / %d", a.Count(), a.Sum())
	}
	if err := a.Merge(NewHistogram([]int64{10})); err == nil {
		t.Fatal("merge with different layout must fail")
	}
	if err := a.Merge(NewHistogram([]int64{10, 30})); err == nil {
		t.Fatal("merge with different bounds must fail")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(seed*1000 + int64(i))
			}
		}(int64(g))
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("concurrent count: got %d, want 8000", h.Count())
	}
	var binSum uint64
	for _, b := range h.Bins() {
		binSum += b
	}
	if binSum != 8000 {
		t.Fatalf("bins don't cover all samples: %d", binSum)
	}
}

// TestQuantiles covers the satellite checklist exactly: empty set,
// single sample, exact-boundary indexing.
func TestQuantiles(t *testing.T) {
	if got := Quantiles(nil, 0.5, 0.99); !reflect.DeepEqual(got, []int64{0, 0}) {
		t.Fatalf("empty: got %v", got)
	}
	if got := Quantiles([]int64{42}, 0, 0.5, 0.99, 1); !reflect.DeepEqual(got, []int64{42, 42, 42, 42}) {
		t.Fatalf("single: got %v", got)
	}
	// Ten samples 10..100: the historical convention idx = int(p·(n−1)).
	samples := []int64{100, 10, 90, 20, 80, 30, 70, 40, 60, 50} // unsorted on purpose
	got := Quantiles(samples, 0, 0.5, 0.9, 0.99, 1)
	want := []int64{10, 50, 90, 90, 100} // idx 0, 4, 8, 8, 9
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("boundaries: got %v, want %v", got, want)
	}
	// Input must stay untouched.
	if samples[0] != 100 || samples[1] != 10 {
		t.Fatal("Quantiles mutated its input")
	}
	// Out-of-range p clamps instead of panicking.
	if got := Quantiles([]int64{1, 2}, -1, 2); !reflect.DeepEqual(got, []int64{1, 2}) {
		t.Fatalf("clamp: got %v", got)
	}
}

func TestRing(t *testing.T) {
	r := NewRing[int](3)
	if r.Len() != 0 || len(r.Items()) != 0 {
		t.Fatal("fresh ring must be empty")
	}
	r.Push(1)
	r.Push(2)
	if got := r.Items(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("partial ring: got %v", got)
	}
	r.Push(3)
	r.Push(4)
	r.Push(5)
	if got := r.Items(); !reflect.DeepEqual(got, []int{3, 4, 5}) {
		t.Fatalf("wrapped ring: got %v", got)
	}
	if r.Dropped() != 2 || r.Len() != 3 {
		t.Fatalf("dropped/len: %d/%d", r.Dropped(), r.Len())
	}
}

func TestRingTracer(t *testing.T) {
	tr := NewRingTracer(2)
	tr.Trace(TraceEvent{Kind: "a"})
	tr.Trace(TraceEvent{Kind: "b"})
	tr.Trace(TraceEvent{Kind: "c"})
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Kind != "b" || evs[1].Kind != "c" {
		t.Fatalf("trace contents: %+v", evs)
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("seq stamps: %+v", evs)
	}
	if tr.Dropped() != 1 {
		t.Fatalf("dropped: %d", tr.Dropped())
	}
}

func TestRegistryPrometheus(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	c.Add(3)
	reg.AddCounter("mr_queries_total", "Route queries served.", &c)
	reg.AddGaugeFunc("mr_version", "Snapshot version.", func() float64 { return 7 })
	var g1, g2 Gauge
	g1.Set(2)
	g2.Set(5)
	reg.AddGauge(`mr_flaps{dest="0"}`, "Route flaps.", &g1)
	reg.AddGauge(`mr_flaps{dest="3"}`, "", &g2)
	h := NewHistogram([]int64{1_000, 1_000_000})
	h.Observe(500)
	h.Observe(2_000_000)
	reg.AddHistogram("mr_query_seconds", "Query latency.", h, 1e9)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE mr_queries_total counter",
		"mr_queries_total 3",
		"# TYPE mr_version gauge",
		"mr_version 7",
		`mr_flaps{dest="0"} 2`,
		`mr_flaps{dest="3"} 5`,
		"# TYPE mr_query_seconds histogram",
		`mr_query_seconds_bucket{le="1e-06"} 1`,
		`mr_query_seconds_bucket{le="0.001"} 1`,
		`mr_query_seconds_bucket{le="+Inf"} 2`,
		"mr_query_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE for the labeled family must appear exactly once.
	if strings.Count(out, "# TYPE mr_flaps gauge") != 1 {
		t.Fatalf("labeled family TYPE line not deduped:\n%s", out)
	}
	// The histogram sum is in seconds.
	if !strings.Contains(out, "mr_query_seconds_sum 0.0020005") {
		t.Fatalf("histogram sum not scaled:\n%s", out)
	}
	// Duplicate registration must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate metric must panic")
			}
		}()
		reg.AddGaugeFunc("mr_version", "", func() float64 { return 0 })
	}()
}

func TestLatencyBucketsSane(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(int64(1500))
	if q := h.Quantile(0.5); q <= 1000 || q > 2500 {
		t.Fatalf("latency bucket placement: %v", q)
	}
	if math.IsNaN(h.Quantile(0.99)) {
		t.Fatal("NaN quantile")
	}
}
