package telemetry

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// LatencyBuckets is the default bucket layout for nanosecond latency
// histograms: roughly logarithmic from 250ns to 10s, chosen so the
// lock-free query path (~1µs) and snapshot reconvergence (~100µs–10ms)
// both land in the well-resolved middle of the range.
var LatencyBuckets = []int64{
	250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000, 10_000_000, 25_000_000, 50_000_000,
	100_000_000, 250_000_000, 500_000_000,
	1_000_000_000, 2_500_000_000, 5_000_000_000, 10_000_000_000,
}

// Histogram is a fixed-bucket histogram over non-negative int64 samples
// (typically nanoseconds) with atomic bins: Observe is wait-free and
// safe from any number of goroutines, and two histograms with the same
// bucket layout merge bin-by-bin. Bucket semantics follow Prometheus:
// bounds are inclusive upper edges (a sample equal to a bound lands in
// that bound's bucket), with an implicit +Inf overflow bucket.
type Histogram struct {
	bounds []int64
	bins   []atomic.Uint64 // len(bounds)+1; last bin is the +Inf overflow
	count  atomic.Uint64
	sum    atomic.Int64
}

// NewHistogram builds a histogram with the given inclusive upper-bound
// bucket edges, which must be strictly increasing and non-empty. The
// slice is copied.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not strictly increasing at %d (%d ≤ %d)",
				i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		bins:   make([]atomic.Uint64, len(bounds)+1),
	}
}

// NewLatencyHistogram is NewHistogram(LatencyBuckets).
func NewLatencyHistogram() *Histogram { return NewHistogram(LatencyBuckets) }

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.bins[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bounds returns the bucket upper edges (the +Inf bucket is implicit).
func (h *Histogram) Bounds() []int64 { return append([]int64(nil), h.bounds...) }

// Bins returns a point-in-time copy of the per-bucket counts, overflow
// bucket last. Concurrent observers may make the copy slightly torn
// relative to Count; scrapes tolerate that.
func (h *Histogram) Bins() []uint64 {
	out := make([]uint64, len(h.bins))
	for i := range h.bins {
		out[i] = h.bins[i].Load()
	}
	return out
}

// Merge adds other's bins into h. The two histograms must share an
// identical bucket layout.
func (h *Histogram) Merge(other *Histogram) error {
	if len(h.bounds) != len(other.bounds) {
		return fmt.Errorf("telemetry: merge of histograms with %d vs %d buckets", len(h.bounds), len(other.bounds))
	}
	for i, b := range h.bounds {
		if other.bounds[i] != b {
			return fmt.Errorf("telemetry: merge of histograms with different bound %d: %d vs %d", i, b, other.bounds[i])
		}
	}
	for i := range h.bins {
		h.bins[i].Add(other.bins[i].Load())
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	return nil
}

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) of the observed
// distribution by linear interpolation inside the bucket holding the
// target rank, assuming samples are non-negative (the first bucket
// interpolates from zero). Samples in the +Inf overflow bucket clamp to
// the largest finite bound. An empty histogram answers 0.
func (h *Histogram) Quantile(p float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(total)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i := range h.bins {
		n := float64(h.bins[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= target {
			if i == len(h.bounds) {
				return float64(h.bounds[len(h.bounds)-1]) // overflow: clamp
			}
			lo := 0.0
			if i > 0 {
				lo = float64(h.bounds[i-1])
			}
			hi := float64(h.bounds[i])
			return lo + (hi-lo)*((target-cum)/n)
		}
		cum += n
	}
	return float64(h.bounds[len(h.bounds)-1])
}

// Quantiles returns exact sample quantiles for each p in ps, using the
// same nearest-rank convention the load generator has always used:
// index int(p·(n−1)) into the ascending sort. The input is not
// modified. An empty input answers zeros; a single sample answers
// itself for every p.
func Quantiles(samples []int64, ps ...float64) []int64 {
	out := make([]int64, len(ps))
	if len(samples) == 0 {
		return out
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, p := range ps {
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		out[i] = sorted[int(p*float64(len(sorted)-1))]
	}
	return out
}
