package telemetry

import (
	"sync"
	"sync/atomic"
)

// TraceEvent is one recorded occurrence in an event trace. The meaning
// of the fields is producer-defined (the protocol simulator records
// deliveries, selections and link changes; the route server records
// slow queries); Seq is stamped by the tracer and At is domain time
// (simulation ticks or wall nanoseconds).
type TraceEvent struct {
	Seq    uint64 `json:"seq"`
	At     int64  `json:"at"`
	Kind   string `json:"kind"`
	Node   int    `json:"node"`
	From   int    `json:"from,omitempty"`
	Arc    int    `json:"arc,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Tracer receives trace events. Implementations must be safe for
// concurrent use; producers call Trace on hot-ish paths, so it should
// stay cheap.
type Tracer interface {
	Trace(TraceEvent)
}

// Ring is a bounded, mutex-protected ring buffer that keeps the most
// recent Capacity items. The zero value is unusable; use NewRing.
type Ring[T any] struct {
	mu      sync.Mutex
	buf     []T
	next    uint64 // total pushes; next%cap is the write slot
	dropped uint64
}

// NewRing builds a ring keeping the last capacity items (≤ 0 means
// 4096).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Push appends an item, evicting the oldest when full.
func (r *Ring[T]) Push(v T) {
	r.mu.Lock()
	if r.next >= uint64(len(r.buf)) {
		r.dropped++
	}
	r.buf[r.next%uint64(len(r.buf))] = v
	r.next++
	r.mu.Unlock()
}

// Items returns the retained items, oldest first.
func (r *Ring[T]) Items() []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	cap64 := uint64(len(r.buf))
	if n <= cap64 {
		return append([]T(nil), r.buf[:n]...)
	}
	out := make([]T, 0, cap64)
	for i := n - cap64; i < n; i++ {
		out = append(out, r.buf[i%cap64])
	}
	return out
}

// Len returns how many items are retained.
func (r *Ring[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Dropped counts items evicted to make room.
func (r *Ring[T]) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// RingTracer is a Tracer backed by a Ring of TraceEvents. It stamps
// each event with a process-order sequence number, so two traces of the
// same deterministic run compare equal event-for-event.
type RingTracer struct {
	ring *Ring[TraceEvent]
	seq  atomic.Uint64
}

// NewRingTracer builds a tracer retaining the last capacity events
// (≤ 0 means 4096).
func NewRingTracer(capacity int) *RingTracer {
	return &RingTracer{ring: NewRing[TraceEvent](capacity)}
}

// Trace records ev, stamping its Seq.
func (t *RingTracer) Trace(ev TraceEvent) {
	ev.Seq = t.seq.Add(1) - 1
	t.ring.Push(ev)
}

// Events returns the retained events, oldest first.
func (t *RingTracer) Events() []TraceEvent { return t.ring.Items() }

// Dropped counts events evicted from the ring.
func (t *RingTracer) Dropped() uint64 { return t.ring.Dropped() }
