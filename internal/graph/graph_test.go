package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidates(t *testing.T) {
	if _, err := New(2, []Arc{{0, 5, 0}}); err == nil {
		t.Fatal("out-of-range arc must be rejected")
	}
	if _, err := New(2, []Arc{{1, 1, 0}}); err == nil {
		t.Fatal("self-loop must be rejected")
	}
	g, err := New(3, []Arc{{0, 1, 0}, {1, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || len(g.Arcs) != 2 {
		t.Fatal("graph fields wrong")
	}
}

func TestAdjacency(t *testing.T) {
	g := MustNew(3, []Arc{{0, 1, 0}, {0, 2, 0}, {1, 2, 0}})
	if len(g.Out(0)) != 2 || len(g.Out(1)) != 1 || len(g.Out(2)) != 0 {
		t.Fatal("Out wrong")
	}
	if len(g.In(2)) != 2 || len(g.In(0)) != 0 {
		t.Fatal("In wrong")
	}
	for _, ai := range g.Out(0) {
		if g.Arcs[ai].From != 0 {
			t.Fatal("Out indexes wrong arcs")
		}
	}
}

func TestSimplePaths(t *testing.T) {
	// Diamond: 0→1→3, 0→2→3, plus direct 0→3.
	g := MustNew(4, []Arc{{0, 1, 0}, {0, 2, 0}, {1, 3, 0}, {2, 3, 0}, {0, 3, 0}})
	paths := g.SimplePaths(0, 3, 0)
	if len(paths) != 3 {
		t.Fatalf("want 3 simple paths, got %d", len(paths))
	}
	short := g.SimplePaths(0, 3, 1)
	if len(short) != 1 {
		t.Fatalf("maxLen=1 must keep only the direct path, got %d", len(short))
	}
	if got := g.SimplePaths(3, 0, 0); len(got) != 0 {
		t.Fatal("no reverse paths expected")
	}
}

func TestSimplePathsAreSimple(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := Random(r, 7, 0.35, UniformLabels(3))
	for _, p := range g.SimplePaths(5, 0, 0) {
		seen := map[int]bool{}
		// Walk the arc sequence, checking continuity and node uniqueness.
		cur := 5
		for _, ai := range p {
			if g.Arcs[ai].From != cur {
				t.Fatal("discontinuous path")
			}
			if seen[cur] {
				t.Fatal("repeated node")
			}
			seen[cur] = true
			cur = g.Arcs[ai].To
		}
		if cur != 0 {
			t.Fatal("path does not end at destination")
		}
	}
}

func TestReachable(t *testing.T) {
	g := MustNew(4, []Arc{{1, 0, 0}, {2, 1, 0}})
	r := g.Reachable(0)
	if !r[0] || !r[1] || !r[2] || r[3] {
		t.Fatalf("reachability = %v", r)
	}
}

func TestRandomAlwaysReachesZero(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := Random(r, 12, 0.1, UniformLabels(2))
		reach := g.Reachable(0)
		for _, ok := range reach {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomNoDuplicateArcsNoSelfLoops(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := Random(r, 10, 0.3, UniformLabels(2))
	seen := map[[2]int]bool{}
	for _, a := range g.Arcs {
		if a.From == a.To {
			t.Fatal("self loop")
		}
		k := [2]int{a.From, a.To}
		if seen[k] {
			t.Fatalf("duplicate arc %v", k)
		}
		seen[k] = true
	}
}

func TestRing(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := Ring(r, 5, UniformLabels(2))
	if g.N != 5 || len(g.Arcs) != 10 {
		t.Fatalf("ring shape wrong: n=%d m=%d", g.N, len(g.Arcs))
	}
	for u := 0; u < 5; u++ {
		if len(g.Out(u)) != 2 {
			t.Fatalf("ring out-degree at %d = %d", u, len(g.Out(u)))
		}
	}
}

func TestGrid(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := Grid(r, 3, 4, UniformLabels(2))
	if g.N != 12 {
		t.Fatalf("grid nodes = %d", g.N)
	}
	// 3 rows × 3 horizontal + 2 rows… total undirected edges = 3*3 + 2*4 = 17,
	// directed = 34.
	if len(g.Arcs) != 34 {
		t.Fatalf("grid arcs = %d", len(g.Arcs))
	}
	// Corner has out-degree 2.
	if len(g.Out(0)) != 2 {
		t.Fatalf("corner degree = %d", len(g.Out(0)))
	}
}

func TestTwoLevel(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	reg := TwoLevel(r, 3, 4, 0.2, 2, UniformLabels(2), UniformLabels(2))
	g := reg.Graph
	if g.N != 12 {
		t.Fatalf("nodes = %d", g.N)
	}
	if len(reg.Inter) != len(g.Arcs) {
		t.Fatal("Inter must parallel Arcs")
	}
	interCount := 0
	for i, a := range g.Arcs {
		crosses := reg.RegionOf[a.From] != reg.RegionOf[a.To]
		if crosses != reg.Inter[i] {
			t.Fatalf("arc %v: Inter flag %v but crossing %v", a, reg.Inter[i], crosses)
		}
		if crosses {
			interCount++
		}
	}
	if interCount == 0 {
		t.Fatal("expected inter-region arcs")
	}
	// Everything must reach node 0 through the gateway ring.
	for u, ok := range g.Reachable(0) {
		if !ok {
			t.Fatalf("node %d cannot reach 0", u)
		}
	}
}

func TestArcsOf(t *testing.T) {
	g := MustNew(3, []Arc{{0, 1, 7}, {1, 2, 8}})
	idxs, ok := g.ArcsOf(Path{0, 1, 2})
	if !ok || len(idxs) != 2 || g.Arcs[idxs[0]].Label != 7 {
		t.Fatalf("ArcsOf = %v %v", idxs, ok)
	}
	if _, ok := g.ArcsOf(Path{0, 2}); ok {
		t.Fatal("missing hop must fail")
	}
}

func TestGadgets(t *testing.T) {
	gg := GoodGadget()
	if gg.N != 4 || len(gg.Arcs) != 6 {
		t.Fatal("good gadget shape")
	}
	bg, arcs := BadGadgetArcs()
	if bg.N != 4 || len(arcs) != 6 {
		t.Fatal("bad gadget shape")
	}
	for u := 1; u <= 3; u++ {
		if len(bg.Out(u)) != 2 {
			t.Fatalf("bad gadget node %d must have direct and via arcs", u)
		}
	}
}

func TestDegrees(t *testing.T) {
	g := MustNew(3, []Arc{{0, 1, 0}, {0, 2, 0}, {1, 2, 0}})
	d := g.Degrees()
	if d[0] != 0 || d[1] != 1 || d[2] != 2 {
		t.Fatalf("degrees = %v", d)
	}
}

func TestScaleFreeConnectedAndHeavyTailed(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	g := ScaleFree(r, 60, 2, UniformLabels(3))
	for u, ok := range g.Reachable(0) {
		if !ok {
			t.Fatalf("node %d cannot reach 0", u)
		}
	}
	// Heavy tail: the max degree should greatly exceed the median.
	d := g.Degrees()
	if d[len(d)-1] < 3*d[len(d)/2] {
		t.Fatalf("degree distribution too flat: median %d, max %d", d[len(d)/2], d[len(d)-1])
	}
	// No duplicate arcs or self loops.
	seen := map[[2]int]bool{}
	for _, a := range g.Arcs {
		if a.From == a.To {
			t.Fatal("self loop")
		}
		k := [2]int{a.From, a.To}
		if seen[k] {
			t.Fatal("duplicate arc")
		}
		seen[k] = true
	}
}

// maskEqual checks that view's adjacency equals a from-scratch MaskArcs
// of base under disabled.
func maskEqual(t *testing.T, base, view *Graph, disabled []bool) {
	t.Helper()
	want := base.MaskArcs(disabled)
	for u := 0; u < base.N; u++ {
		if !sameInts(view.Out(u), want.Out(u)) {
			t.Fatalf("node %d: out rows differ: %v vs %v", u, view.Out(u), want.Out(u))
		}
		if !sameInts(view.In(u), want.In(u)) {
			t.Fatalf("node %d: in rows differ: %v vs %v", u, view.In(u), want.In(u))
		}
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMaskArcs(t *testing.T) {
	g := MustNew(3, []Arc{{0, 1, 0}, {0, 2, 0}, {1, 2, 0}, {2, 0, 0}})
	disabled := []bool{false, true, false, false}
	v := g.MaskArcs(disabled)
	if !sameInts(v.Out(0), []int{0}) || !sameInts(v.In(2), []int{2}) {
		t.Fatalf("masked adjacency wrong: out(0)=%v in(2)=%v", v.Out(0), v.In(2))
	}
	// The view shares arcs; indices stay valid.
	if &v.Arcs[0] != &g.Arcs[0] {
		t.Fatal("view must share the Arcs slice")
	}
	// The base graph is untouched.
	if len(g.Out(0)) != 2 {
		t.Fatal("MaskArcs mutated its receiver")
	}
	// Nothing disabled ⇒ identical adjacency.
	maskEqual(t, g, g.MaskArcs(make([]bool, 4)), make([]bool, 4))
}

// TestWithArcToggled: a random toggle sequence built with copy-on-write
// row rebuilds always matches a from-scratch mask, and prior views are
// never mutated.
func TestWithArcToggled(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := Random(r, 4+r.Intn(8), 0.4, UniformLabels(3))
		disabled := make([]bool, len(g.Arcs))
		view := g.MaskArcs(disabled)
		for step := 0; step < 30; step++ {
			ai := r.Intn(len(g.Arcs))
			disabled[ai] = !disabled[ai]
			prev := view
			prevDisabled := make([]bool, len(disabled))
			copy(prevDisabled, disabled)
			prevDisabled[ai] = !prevDisabled[ai]
			view = view.WithArcToggled(ai, disabled)
			maskEqual(t, g, view, disabled)
			maskEqual(t, g, prev, prevDisabled) // old snapshot intact
		}
	}
}

// TestWithArcsToggled: the batched row rebuild must agree with a
// from-scratch mask for toggle batches of every shape — disjoint arcs,
// arcs sharing endpoints, and repeat toggles of the same arc — without
// mutating prior views.
func TestWithArcsToggled(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		g := Random(r, 4+r.Intn(8), 0.4, UniformLabels(3))
		disabled := make([]bool, len(g.Arcs))
		view := g.MaskArcs(disabled)
		for step := 0; step < 15; step++ {
			ais := make([]int, 1+r.Intn(6))
			for i := range ais {
				ais[i] = r.Intn(len(g.Arcs)) // duplicates allowed on purpose
			}
			prev := view
			prevDisabled := make([]bool, len(disabled))
			copy(prevDisabled, disabled)
			for _, ai := range ais {
				disabled[ai] = !disabled[ai]
			}
			view = view.WithArcsToggled(ais, disabled)
			maskEqual(t, g, view, disabled)
			maskEqual(t, g, prev, prevDisabled) // old snapshot intact
		}
	}
}

// TestRevCSR: the flat reverse index must agree with the per-node In
// slices on random graphs, list arc indices in ascending order, and be
// shared (same backing object) between a base graph and its masked
// views — arc indices are stable across views, so one index serves all.
func TestRevCSR(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		g := Random(r, 3+r.Intn(12), 0.3, UniformLabels(3))
		rev := g.RevIn()
		for v := 0; v < g.N; v++ {
			row := rev.In(v)
			if len(row) != len(g.In(v)) {
				t.Fatalf("node %d: %d reverse arcs, In lists %d", v, len(row), len(g.In(v)))
			}
			for i, ai := range row {
				if g.Arcs[ai].To != v {
					t.Fatalf("node %d: arc %d does not enter it", v, ai)
				}
				if int(ai) != g.In(v)[i] {
					t.Fatalf("node %d: row %v disagrees with In %v", v, row, g.In(v))
				}
			}
		}
		masked := g.MaskArcs(make([]bool, len(g.Arcs)))
		if masked.RevIn() != rev {
			t.Fatal("masked view must share the base graph's reverse index")
		}
	}
}
