package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Topology file format: a line-oriented text format for labelled digraphs.
//
//	# comment (also after values)
//	nodes 5
//	arc 1 0 +1        # from to label — label is a function name or index
//	arc 2 1 cap3
//
// Labels resolve through the caller-supplied resolver (typically the
// algebra's function set by name), falling back to integer indices.

// ParseTopology reads the format above. resolve maps a label token to a
// function index; it may be nil, in which case only integer labels are
// accepted.
func ParseTopology(rd io.Reader, resolve func(label string) (int, bool)) (*Graph, error) {
	sc := bufio.NewScanner(rd)
	n := -1
	var arcs []Arc
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "nodes":
			if len(fields) != 2 {
				return nil, fmt.Errorf("topology line %d: nodes wants one argument", lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 1 {
				return nil, fmt.Errorf("topology line %d: bad node count %q", lineNo, fields[1])
			}
			if n >= 0 {
				return nil, fmt.Errorf("topology line %d: duplicate nodes directive", lineNo)
			}
			n = v
		case "arc":
			if len(fields) != 4 {
				return nil, fmt.Errorf("topology line %d: arc wants 'arc from to label'", lineNo)
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("topology line %d: bad endpoints", lineNo)
			}
			label, err := resolveLabel(fields[3], resolve)
			if err != nil {
				return nil, fmt.Errorf("topology line %d: %v", lineNo, err)
			}
			arcs = append(arcs, Arc{From: from, To: to, Label: label})
		default:
			return nil, fmt.Errorf("topology line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("topology: missing nodes directive")
	}
	return New(n, arcs)
}

func resolveLabel(tok string, resolve func(string) (int, bool)) (int, error) {
	if resolve != nil {
		if idx, ok := resolve(tok); ok {
			return idx, nil
		}
	}
	idx, err := strconv.Atoi(tok)
	if err != nil {
		return 0, fmt.Errorf("unknown label %q", tok)
	}
	return idx, nil
}

// WriteTopology renders g in the topology file format. labelName maps a
// function index to its display name; nil writes integer indices.
func (g *Graph) WriteTopology(w io.Writer, labelName func(int) string) error {
	if _, err := fmt.Fprintf(w, "nodes %d\n", g.N); err != nil {
		return err
	}
	for _, a := range g.Arcs {
		label := strconv.Itoa(a.Label)
		if labelName != nil {
			label = labelName(a.Label)
		}
		if _, err := fmt.Fprintf(w, "arc %d %d %s\n", a.From, a.To, label); err != nil {
			return err
		}
	}
	return nil
}
