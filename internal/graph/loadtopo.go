package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file holds the bulk topology importer for Internet-scale graphs:
// a line-oriented edge-list reader covering both plain whitespace-
// separated edge lists ("u v [attr]") and CAIDA AS-relationship dumps
// ("u|v|rel"). It complements ParseTopology (the labelled mrserve/
// metaroute format): ParseTopology is exact and label-aware for
// hand-written topologies, LoadTopology is built for 10k–100k-node
// AS-graph files with arbitrary sparse node ids.

// DefaultMaxTopologyNodes bounds LoadTopology when TopoOptions.MaxNodes
// is unset: large enough for every public AS graph (the IPv4 AS count
// is ~80k), small enough to fail fast on a corrupt file that sprays
// ids.
const DefaultMaxTopologyNodes = 1 << 20

// TopoOptions configures LoadTopology.
type TopoOptions struct {
	// Label maps an edge to an arc label given its original endpoint
	// ids and the optional third field (0 when the line has none; the
	// CAIDA relationship field -1/0/1 arrives here). Nil labels every
	// arc 0.
	Label func(from, to int64, attr int) int
	// Undirected adds the reverse arc for every edge line (AS-graph
	// links are bidirectional adjacencies).
	Undirected bool
	// MaxNodes caps the number of distinct node ids (≤ 0:
	// DefaultMaxTopologyNodes). Crossing the cap is an error, not a
	// truncation.
	MaxNodes int
}

// TopoMeta reports how an imported topology mapped onto dense node ids.
type TopoMeta struct {
	// IDs maps dense node id → original file id, in first-seen order.
	IDs []int64
	// Lines counts edge lines consumed (comments and blanks excluded).
	Lines int
	// DupEdges counts repeated (from,to) pairs dropped (first wins).
	DupEdges int
	// SelfLoops counts self-loop lines dropped.
	SelfLoops int
}

// Node resolves an original file id to its dense node id (-1 unknown).
func (m *TopoMeta) Node(id int64) int {
	for dense, orig := range m.IDs {
		if orig == id {
			return dense
		}
	}
	return -1
}

// LoadTopology reads an edge-list topology: one edge per line,
// "from to [attr]" with whitespace or '|' separators, '#' comments
// (whole-line or trailing). Node ids are arbitrary int64s, densely
// remapped in first-seen order; the mapping is returned in TopoMeta.
// Self-loops and duplicate (from,to) pairs are dropped (counted in the
// meta), since AS dumps routinely contain both. The node-count cap is
// validated while reading, so a corrupt file fails fast instead of
// allocating without bound.
func LoadTopology(rd io.Reader, opt TopoOptions) (*Graph, *TopoMeta, error) {
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxTopologyNodes
	}
	label := opt.Label
	if label == nil {
		label = func(int64, int64, int) int { return 0 }
	}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	meta := &TopoMeta{}
	dense := make(map[int64]int)
	node := func(id int64) (int, error) {
		if n, ok := dense[id]; ok {
			return n, nil
		}
		if len(meta.IDs) >= maxNodes {
			return 0, fmt.Errorf("graph: topology exceeds %d nodes", maxNodes)
		}
		n := len(meta.IDs)
		dense[id] = n
		meta.IDs = append(meta.IDs, id)
		return n, nil
	}
	type edge struct{ from, to int }
	haveEdge := make(map[edge]bool)
	var arcs []Arc
	addArc := func(u, v int, from, to int64, attr int) {
		if haveEdge[edge{u, v}] {
			meta.DupEdges++
			return
		}
		haveEdge[edge{u, v}] = true
		arcs = append(arcs, Arc{From: u, To: v, Label: label(from, to, attr)})
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if strings.IndexByte(line, '|') >= 0 {
			line = strings.ReplaceAll(line, "|", " ")
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 && len(fields) != 3 {
			return nil, nil, fmt.Errorf("graph: topology line %d: want 'from to [attr]', got %d fields", lineNo, len(fields))
		}
		from, err1 := strconv.ParseInt(fields[0], 10, 64)
		to, err2 := strconv.ParseInt(fields[1], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, nil, fmt.Errorf("graph: topology line %d: bad endpoints %q %q", lineNo, fields[0], fields[1])
		}
		attr := 0
		if len(fields) == 3 {
			a, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, nil, fmt.Errorf("graph: topology line %d: bad attribute %q", lineNo, fields[2])
			}
			attr = a
		}
		meta.Lines++
		if from == to {
			meta.SelfLoops++
			continue
		}
		u, err := node(from)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: topology line %d: %v", lineNo, err)
		}
		v, err := node(to)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: topology line %d: %v", lineNo, err)
		}
		addArc(u, v, from, to, attr)
		if opt.Undirected {
			addArc(v, u, to, from, attr)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(meta.IDs) == 0 {
		return nil, nil, fmt.Errorf("graph: topology has no edges")
	}
	g, err := New(len(meta.IDs), arcs)
	if err != nil {
		return nil, nil, err
	}
	return g, meta, nil
}
