package graph

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestLoadTopologyEdgeList(t *testing.T) {
	src := `
# AS-level toy graph
10 20
20 30 7   # trailing comment
30 10
10 10     # self loop, dropped
10 20     # duplicate, dropped
`
	var gotAttr []int
	g, meta, err := LoadTopology(strings.NewReader(src), TopoOptions{
		Label: func(from, to int64, attr int) int { gotAttr = append(gotAttr, attr); return attr },
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || len(g.Arcs) != 3 {
		t.Fatalf("got n=%d m=%d, want 3/3", g.N, len(g.Arcs))
	}
	if meta.SelfLoops != 1 || meta.DupEdges != 1 || meta.Lines != 5 {
		t.Fatalf("meta = %+v, want 1 self loop, 1 dup, 5 lines", meta)
	}
	if want := []int64{10, 20, 30}; fmt.Sprint(meta.IDs) != fmt.Sprint(want) {
		t.Fatalf("IDs = %v, want %v", meta.IDs, want)
	}
	if meta.Node(30) != 2 || meta.Node(99) != -1 {
		t.Fatalf("Node remap wrong: Node(30)=%d Node(99)=%d", meta.Node(30), meta.Node(99))
	}
	if want := []int{0, 7, 0}; fmt.Sprint(gotAttr) != fmt.Sprint(want) {
		t.Fatalf("attrs = %v, want %v", gotAttr, want)
	}
}

func TestLoadTopologyCAIDAFormat(t *testing.T) {
	// CAIDA as-rel lines: provider|customer|-1, peer|peer|0.
	src := "1|2|-1\n2|3|0\n"
	g, _, err := LoadTopology(strings.NewReader(src), TopoOptions{
		Undirected: true,
		Label:      func(_, _ int64, attr int) int { return attr + 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || len(g.Arcs) != 4 {
		t.Fatalf("got n=%d m=%d, want 3/4", g.N, len(g.Arcs))
	}
	if g.Arcs[0].Label != 0 || g.Arcs[2].Label != 1 {
		t.Fatalf("labels = %d,%d, want 0,1", g.Arcs[0].Label, g.Arcs[2].Label)
	}
}

func TestLoadTopologyErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", "# nothing\n"},
		{"bad endpoints", "a b\n"},
		{"bad attr", "1 2 x\n"},
		{"wrong arity", "1 2 3 4\n"},
	}
	for _, tc := range cases {
		if _, _, err := LoadTopology(strings.NewReader(tc.src), TopoOptions{}); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
	// Node cap crossed mid-file is an error, not a truncation.
	if _, _, err := LoadTopology(strings.NewReader("1 2\n3 4\n"), TopoOptions{MaxNodes: 3}); err == nil {
		t.Error("node cap: want error")
	}
}

// TestLoadTopology100k validates the importer at the scale the prefix
// plane targets: a 100k-node ring edge list with sparse original ids
// imports with the right shape and full destination-0 reachability.
func TestLoadTopology100k(t *testing.T) {
	if testing.Short() {
		t.Skip("large import in -short mode")
	}
	const n = 100_000
	var sb strings.Builder
	sb.Grow(n * 16)
	for i := 0; i < n; i++ {
		// Sparse ids (×7) exercise the dense remap.
		fmt.Fprintf(&sb, "%d %d\n", i*7, ((i+1)%n)*7)
	}
	g, meta, err := LoadTopology(strings.NewReader(sb.String()), TopoOptions{Undirected: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.N != n || len(g.Arcs) != 2*n {
		t.Fatalf("got n=%d m=%d, want %d/%d", g.N, len(g.Arcs), n, 2*n)
	}
	if meta.Node(7) != 1 {
		t.Fatalf("Node(7) = %d, want 1", meta.Node(7))
	}
	reach := g.Reachable(0)
	for u, ok := range reach {
		if !ok {
			t.Fatalf("node %d cannot reach 0", u)
		}
	}
}

// TestScaleFree10kGeneration is the generation smoke test for the
// preallocated generators: a 10k-node scale-free topology comes out
// connected toward node 0 with the degree-bounded arc count.
func TestScaleFree10kGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("large generation in -short mode")
	}
	const n, m = 10_000, 2
	g := ScaleFree(rand.New(rand.NewSource(7)), n, m, UniformLabels(4))
	if g.N != n {
		t.Fatalf("N = %d, want %d", g.N, n)
	}
	if len(g.Arcs) < 2*(n-1) || len(g.Arcs) > 2*m*n {
		t.Fatalf("arc count %d outside [%d,%d]", len(g.Arcs), 2*(n-1), 2*m*n)
	}
	reach := g.Reachable(0)
	for u, ok := range reach {
		if !ok {
			t.Fatalf("node %d cannot reach 0", u)
		}
	}
	// The flat adjacency index must agree with the arc list.
	deg := 0
	for u := 0; u < g.N; u++ {
		deg += len(g.Out(u))
		for _, ai := range g.Out(u) {
			if g.Arcs[ai].From != u {
				t.Fatalf("Out(%d) lists arc %d with From=%d", u, ai, g.Arcs[ai].From)
			}
		}
	}
	if deg != len(g.Arcs) {
		t.Fatalf("sum of out-degrees %d != arc count %d", deg, len(g.Arcs))
	}
}
