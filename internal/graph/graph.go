// Package graph provides the network substrate of the metarouting
// library: directed graphs whose arcs are labelled with arc-function
// indices of a routing algebra, plus topology generators (random, ring,
// grid, two-level region topologies, and the classic oscillation gadgets)
// and bounded simple-path enumeration used for ground-truth optima.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Arc is a directed edge (From → To) labelled with the index of an arc
// function in the algebra's function set. In the functional model of §II,
// the weight of a route that carries traffic From → To is obtained by
// applying the arc's function to the weight advertised by To.
type Arc struct {
	From, To int
	// Label indexes the arc's function in the algebra's function set.
	Label int
}

// Graph is a directed graph with labelled arcs. Nodes are 0..N-1.
type Graph struct {
	// N is the node count.
	N int
	// Arcs lists every directed arc.
	Arcs []Arc

	out [][]int // out[u] = indices into Arcs with From == u
	in  [][]int // in[v] = indices into Arcs with To == v

	// outOver/inOver, on views built by WithArcToggled/WithArcsToggled,
	// overlay the shared base rows: a present key returns the overlay row,
	// an absent key falls through to out/in. The maps are frozen at
	// construction (views are immutable), so concurrent reads are safe.
	outOver map[int][]int
	inOver  map[int][]int

	// base, for views built by MaskArcs/WithArcToggled, is the unmasked
	// graph whose full adjacency rows seed copy-on-write row rebuilds.
	base *Graph

	// rev caches the base graph's CSR reverse-adjacency index (built at
	// most once, shared by every view — see RevIn).
	revOnce sync.Once
	rev     *RevCSR
}

// New builds a graph from a node count and arcs; it validates endpoints.
func New(n int, arcs []Arc) (*Graph, error) {
	g := &Graph{N: n, Arcs: arcs}
	for _, a := range arcs {
		if a.From < 0 || a.From >= n || a.To < 0 || a.To >= n {
			return nil, fmt.Errorf("graph: arc %v out of range [0,%d)", a, n)
		}
		if a.From == a.To {
			return nil, fmt.Errorf("graph: self-loop at %d", a.From)
		}
	}
	g.index()
	return g, nil
}

// MustNew is New but panics on invalid input.
func MustNew(n int, arcs []Arc) *Graph {
	g, err := New(n, arcs)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Graph) index() {
	g.out, g.in = buildAdjacency(g.N, g.Arcs, nil)
}

// buildAdjacency constructs out/in adjacency rows with a counting pass:
// all rows are carved out of two flat backing arrays, so indexing a
// 100k-node topology costs four allocations instead of one growing
// slice per node. Rows are capped (three-index slices), so a later
// append on a row can never bleed into its neighbour. disabled, when
// non-nil, omits masked arcs (the MaskArcs path).
func buildAdjacency(n int, arcs []Arc, disabled []bool) (out, in [][]int) {
	outDeg := make([]int, n)
	inDeg := make([]int, n)
	m := 0
	for i, a := range arcs {
		if disabled != nil && i < len(disabled) && disabled[i] {
			continue
		}
		outDeg[a.From]++
		inDeg[a.To]++
		m++
	}
	outFlat := make([]int, m)
	inFlat := make([]int, m)
	out = make([][]int, n)
	in = make([][]int, n)
	oOff, iOff := 0, 0
	for u := 0; u < n; u++ {
		out[u] = outFlat[oOff : oOff : oOff+outDeg[u]]
		in[u] = inFlat[iOff : iOff : iOff+inDeg[u]]
		oOff += outDeg[u]
		iOff += inDeg[u]
	}
	for i, a := range arcs {
		if disabled != nil && i < len(disabled) && disabled[i] {
			continue
		}
		out[a.From] = append(out[a.From], i)
		in[a.To] = append(in[a.To], i)
	}
	return out, in
}

// Out returns the indices (into Arcs) of arcs leaving u.
func (g *Graph) Out(u int) []int {
	if g.outOver != nil {
		if row, ok := g.outOver[u]; ok {
			return row
		}
	}
	return g.out[u]
}

// origin resolves the unmasked graph underlying a view (itself for a
// plain graph).
func (g *Graph) origin() *Graph {
	if g.base != nil {
		return g.base
	}
	return g
}

// MaskArcs returns an immutable view of g whose adjacency omits every
// arc i with disabled[i] true (a shorter slice leaves the tail enabled).
// The view shares g's Arcs slice, so arc indices — and therefore arc
// labels and LinkEvent references — stay valid across views; only the
// adjacency index is rebuilt. Every solver and the RIB builder traverse
// graphs exclusively through Out/In, so a masked view routes exactly as
// a freshly built graph containing only the enabled arcs.
func (g *Graph) MaskArcs(disabled []bool) *Graph {
	v := &Graph{N: g.N, Arcs: g.Arcs, base: g.origin()}
	v.out, v.in = buildAdjacency(g.N, v.base.Arcs, disabled)
	return v
}

// WithArcToggled returns a copy-on-write successor of view g after arc
// ai changed state: disabled must already reflect the new state of every
// arc, and g must reflect the pre-toggle state of the mask. Only the two
// adjacency rows touching the arc's endpoints are rebuilt; every other
// row is reached through the shared base arrays, making a topology event
// O(active failures + deg) — no per-view copy of the N row headers.
// The receiver is left untouched.
func (g *Graph) WithArcToggled(ai int, disabled []bool) *Graph {
	return g.WithArcsToggled([]int{ai}, disabled)
}

// WithArcsToggled is WithArcToggled for a batch. The view shares the
// unmasked base adjacency arrays outright and carries a sparse overlay
// holding exactly the rows that currently contain a disabled arc, so a
// k-toggle storm costs O(overlay + Σdeg of the batch endpoints) — the
// overlay is bounded by the number of live failures, not by N, and a
// restored row's entry is dropped rather than stored. disabled must
// already reflect the new state of every arc, and g must reflect the
// pre-batch state of the mask (any view produced by this package under
// that mask qualifies). The receiver is left untouched.
func (g *Graph) WithArcsToggled(ais []int, disabled []bool) *Graph {
	b := g.origin()
	v := &Graph{N: b.N, Arcs: b.Arcs, out: b.out, in: b.in, base: b}
	v.outOver = make(map[int][]int, len(g.outOver)+len(ais))
	v.inOver = make(map[int][]int, len(g.inOver)+len(ais))
	if g == b || g.outOver != nil {
		// The parent already addresses the base arrays, so the rows that
		// can differ from base under the new mask are the parent's overlay
		// rows plus this batch's endpoint rows. Untouched overlay rows are
		// still exact (only the batch's arcs changed state) and carry over
		// by reference.
		for u, row := range g.outOver {
			v.outOver[u] = row
		}
		for u, row := range g.inOver {
			v.inOver[u] = row
		}
		for _, ai := range ais {
			// Refiltering a row twice when toggles share an endpoint is
			// harmless (setRow is idempotent) and batches are small.
			a := b.Arcs[ai]
			setRow(v.outOver, a.From, b.out[a.From], disabled)
			setRow(v.inOver, a.To, b.in[a.To], disabled)
		}
		return v
	}
	// The parent is a dense re-index (MaskArcs), whose rows don't alias
	// the base arrays — rebuild the overlay from the mask itself: the
	// rows differing from base are exactly the endpoint rows of every
	// disabled arc. One O(M) mask sweep; later swaps chain off this
	// view's overlay on the fast path above.
	for i, down := range disabled {
		if !down || i >= len(b.Arcs) {
			continue
		}
		a := b.Arcs[i]
		if _, ok := v.outOver[a.From]; !ok {
			v.outOver[a.From] = filterRow(b.out[a.From], disabled)
		}
		if _, ok := v.inOver[a.To]; !ok {
			v.inOver[a.To] = filterRow(b.in[a.To], disabled)
		}
	}
	return v
}

// setRow installs the filtered base row into an overlay map, or deletes
// the entry when no arc was filtered out — a fully restored row is
// served from the shared base array again, which is what keeps overlay
// size proportional to live failures instead of toggle history.
func setRow(over map[int][]int, u int, full []int, disabled []bool) {
	row := filterRow(full, disabled)
	if len(row) == len(full) {
		delete(over, u)
		return
	}
	over[u] = row
}

// filterRow drops disabled arc indices from a full adjacency row.
func filterRow(row []int, disabled []bool) []int {
	out := make([]int, 0, len(row))
	for _, i := range row {
		if i < len(disabled) && disabled[i] {
			continue
		}
		out = append(out, i)
	}
	return out
}

// In returns the indices (into Arcs) of arcs entering v.
func (g *Graph) In(v int) []int {
	if g.inOver != nil {
		if row, ok := g.inOver[v]; ok {
			return row
		}
	}
	return g.in[v]
}

// RevCSR is a compressed-sparse-row reverse-adjacency index over the
// unmasked arc set: In(v) lists the indices of every arc entering v, in
// ascending arc-index order, backed by two flat arrays instead of N
// slice headers. It is built once per base graph and shared by all
// masked views (arc indices are stable across views), so delta solvers
// can seed dirty in-neighbours without sweeping the full arc list.
// Consumers working on a masked view skip disabled arc indices
// themselves — the index always describes the full topology.
type RevCSR struct {
	start []int32 // start[v]..start[v+1] delimits v's row in arcs
	arcs  []int32 // arc indices grouped by head node
}

// In returns the indices (into the graph's Arcs) of arcs entering v,
// including arcs currently masked out of any view.
func (c *RevCSR) In(v int) []int32 { return c.arcs[c.start[v]:c.start[v+1]] }

// RevIn returns the graph's shared reverse CSR index, building it on
// first use. The index belongs to the unmasked base graph, so every
// view of the same topology returns the identical structure; the build
// is synchronised and the result is immutable, making RevIn safe for
// concurrent use.
func (g *Graph) RevIn() *RevCSR {
	b := g.origin()
	b.revOnce.Do(func() {
		c := &RevCSR{
			start: make([]int32, b.N+1),
			arcs:  make([]int32, len(b.Arcs)),
		}
		for _, a := range b.Arcs {
			c.start[a.To+1]++
		}
		for v := 0; v < b.N; v++ {
			c.start[v+1] += c.start[v]
		}
		fill := append([]int32(nil), c.start[:b.N]...)
		for i, a := range b.Arcs {
			c.arcs[fill[a.To]] = int32(i)
			fill[a.To]++
		}
		b.rev = c
	})
	return b.rev
}

// String renders a compact summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.N, len(g.Arcs))
}

// Path is a node sequence v0, v1, …, vk with arcs (v0,v1)…(v(k-1),vk).
type Path []int

// ArcsOf resolves a path to the arc indices it traverses, choosing the
// first matching arc for each hop. ok is false if some hop has no arc.
func (g *Graph) ArcsOf(p Path) (idxs []int, ok bool) {
	for i := 0; i+1 < len(p); i++ {
		found := -1
		for _, ai := range g.Out(p[i]) {
			if g.Arcs[ai].To == p[i+1] {
				found = ai
				break
			}
		}
		if found < 0 {
			return nil, false
		}
		idxs = append(idxs, found)
	}
	return idxs, true
}

// SimplePaths enumerates every simple (loop-free) path from src to dst as
// arc-index sequences, up to maxLen hops. It is exponential and intended
// for ground-truth computation on small graphs; maxLen ≤ 0 means N-1.
func (g *Graph) SimplePaths(src, dst, maxLen int) [][]int {
	if maxLen <= 0 {
		maxLen = g.N - 1
	}
	var out [][]int
	visited := make([]bool, g.N)
	var cur []int
	var rec func(u int)
	rec = func(u int) {
		if u == dst {
			cp := make([]int, len(cur))
			copy(cp, cur)
			out = append(out, cp)
			return
		}
		if len(cur) == maxLen {
			return
		}
		visited[u] = true
		for _, ai := range g.Out(u) {
			v := g.Arcs[ai].To
			if visited[v] {
				continue
			}
			cur = append(cur, ai)
			rec(v)
			cur = cur[:len(cur)-1]
		}
		visited[u] = false
	}
	rec(src)
	return out
}

// Reachable reports which nodes can reach dst following arc directions
// (i.e. reverse reachability from dst).
func (g *Graph) Reachable(dst int) []bool {
	seen := make([]bool, g.N)
	seen[dst] = true
	queue := []int{dst}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, ai := range g.In(v) {
			u := g.Arcs[ai].From
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return seen
}

// LabelPicker assigns arc labels during generation.
type LabelPicker func(r *rand.Rand, from, to int) int

// UniformLabels picks labels uniformly from [0, nLabels).
func UniformLabels(nLabels int) LabelPicker {
	return func(r *rand.Rand, _, _ int) int { return r.Intn(nLabels) }
}

// Random generates a GNP-style random digraph: each ordered pair (u,v),
// u ≠ v, carries an arc with probability p. A spanning in-tree toward
// node 0 is added so that every node can reach node 0 — destination 0 is
// the conventional experiment target.
func Random(r *rand.Rand, n int, p float64, pick LabelPicker) *Graph {
	// Expected arc count: p per ordered pair plus the connectivity pass.
	expect := int(float64(n)*float64(n-1)*p) + n
	arcs := make([]Arc, 0, expect)
	have := make(map[[2]int]bool, expect)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if r.Float64() < p {
				arcs = append(arcs, Arc{From: u, To: v, Label: pick(r, u, v)})
				have[[2]int{u, v}] = true
			}
		}
	}
	// Ensure reverse reachability of 0: give node u an arc to a random
	// lower-numbered node if it has no path yet; connecting u → u-1 …
	// suffices and keeps the graph sparse.
	for u := 1; u < n; u++ {
		v := r.Intn(u)
		if !have[[2]int{u, v}] {
			arcs = append(arcs, Arc{From: u, To: v, Label: pick(r, u, v)})
			have[[2]int{u, v}] = true
		}
	}
	return MustNew(n, arcs)
}

// ScaleFree generates a preferential-attachment digraph: nodes join one
// at a time and attach m bidirectional links to existing nodes chosen
// with probability proportional to current degree (Barabási–Albert
// style) — the heavy-tailed shape of Internet-like topologies.
func ScaleFree(r *rand.Rand, n, m int, pick LabelPicker) *Graph {
	if m < 1 {
		m = 1
	}
	// Each joining node attaches at most m undirected links (2 arcs
	// each); preallocating from that bound keeps 10k–100k-node
	// generation from thrashing the GC on slice growth.
	expect := 2 * m * n
	arcs := make([]Arc, 0, expect)
	have := make(map[[2]int]bool, expect)
	// targets holds one entry per half-degree, so uniform sampling from
	// it is degree-proportional.
	targets := make([]int, 1, expect+1)
	add := func(u, v int) {
		if u == v || have[[2]int{u, v}] {
			return
		}
		have[[2]int{u, v}] = true
		have[[2]int{v, u}] = true
		arcs = append(arcs, Arc{From: u, To: v, Label: pick(r, u, v)})
		arcs = append(arcs, Arc{From: v, To: u, Label: pick(r, v, u)})
		targets = append(targets, u, v)
	}
	for u := 1; u < n; u++ {
		links := m
		if u < m {
			links = u
		}
		attached := false
		for i := 0; i < links; i++ {
			v := targets[r.Intn(len(targets))]
			if v < u {
				before := len(arcs)
				add(u, v)
				attached = attached || len(arcs) > before
			}
		}
		if !attached {
			// Guarantee connectivity even if every draw collided.
			add(u, r.Intn(u))
		}
	}
	return MustNew(n, arcs)
}

// Ring generates a bidirectional ring of n nodes.
func Ring(r *rand.Rand, n int, pick LabelPicker) *Graph {
	arcs := make([]Arc, 0, 2*n)
	for u := 0; u < n; u++ {
		v := (u + 1) % n
		arcs = append(arcs, Arc{From: u, To: v, Label: pick(r, u, v)})
		arcs = append(arcs, Arc{From: v, To: u, Label: pick(r, v, u)})
	}
	return MustNew(n, arcs)
}

// Grid generates a rows×cols bidirectional grid.
func Grid(r *rand.Rand, rows, cols int, pick LabelPicker) *Graph {
	id := func(i, j int) int { return i*cols + j }
	expect := 2 * (rows*(cols-1) + cols*(rows-1))
	if expect < 0 {
		expect = 0
	}
	arcs := make([]Arc, 0, expect)
	add := func(u, v int) {
		arcs = append(arcs, Arc{From: u, To: v, Label: pick(r, u, v)})
		arcs = append(arcs, Arc{From: v, To: u, Label: pick(r, v, u)})
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				add(id(i, j), id(i, j+1))
			}
			if i+1 < rows {
				add(id(i, j), id(i+1, j))
			}
		}
	}
	return MustNew(rows*cols, arcs)
}

// Regions describes a two-level topology for policy-partition experiments
// (BGP ASes, OSPF areas): nodes grouped into regions, dense arcs inside a
// region, sparse arcs between regions. RegionOf maps node → region.
type Regions struct {
	Graph    *Graph
	RegionOf []int
	// Inter marks, per arc index, whether the arc crosses regions.
	Inter []bool
}

// TwoLevel generates a Regions topology: k regions of size s each;
// intra-region arcs with probability pIntra (plus an intra-region ring for
// connectivity), and interPairs random inter-region arc pairs (plus a ring
// over region gateways). Intra labels are drawn from pickIntra and inter
// labels from pickInter, so the caller can map them onto the (2,(id,g))
// and (1,(f,κ_c)) function families of a scoped product.
func TwoLevel(r *rand.Rand, k, s int, pIntra float64, interPairs int,
	pickIntra, pickInter LabelPicker) *Regions {
	n := k * s
	regionOf := make([]int, n)
	for i := range regionOf {
		regionOf[i] = i / s
	}
	var arcs []Arc
	var inter []bool
	add := func(u, v int, isInter bool) {
		var l int
		if isInter {
			l = pickInter(r, u, v)
		} else {
			l = pickIntra(r, u, v)
		}
		arcs = append(arcs, Arc{From: u, To: v, Label: l})
		inter = append(inter, isInter)
	}
	// Intra-region rings + random extras.
	for reg := 0; reg < k; reg++ {
		base := reg * s
		for i := 0; i < s; i++ {
			u, v := base+i, base+(i+1)%s
			if s > 1 {
				add(u, v, false)
				add(v, u, false)
			}
		}
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				if i != j && r.Float64() < pIntra {
					add(base+i, base+j, false)
				}
			}
		}
	}
	// Gateway ring over regions (node 0 of each region) + random extras.
	for reg := 0; reg < k; reg++ {
		u, v := reg*s, ((reg+1)%k)*s
		if k > 1 {
			add(u, v, true)
			add(v, u, true)
		}
	}
	for i := 0; i < interPairs; i++ {
		ru, rv := r.Intn(k), r.Intn(k)
		if ru == rv {
			continue
		}
		u := ru*s + r.Intn(s)
		v := rv*s + r.Intn(s)
		add(u, v, true)
		add(v, u, true)
	}
	// Deduplicate arcs (keep first label).
	type key struct{ u, v int }
	seen := make(map[key]bool)
	var dedupArcs []Arc
	var dedupInter []bool
	for i, a := range arcs {
		k := key{a.From, a.To}
		if seen[k] {
			continue
		}
		seen[k] = true
		dedupArcs = append(dedupArcs, a)
		dedupInter = append(dedupInter, inter[i])
	}
	return &Regions{Graph: MustNew(n, dedupArcs), RegionOf: regionOf, Inter: dedupInter}
}

// GoodGadget is the classic convergent policy gadget: a 4-node topology
// (0 = destination) where nodes 1–3 have conflicting but satisfiable
// preferences. Arc labels are left 0; callers relabel per experiment.
func GoodGadget() *Graph {
	return MustNew(4, []Arc{
		{1, 0, 0}, {2, 0, 0}, {3, 0, 0},
		{1, 2, 0}, {2, 3, 0}, {3, 1, 0},
	})
}

// BadGadgetArcs returns the BAD GADGET topology of persistent route
// oscillation [16]: destination 0 and nodes 1, 2, 3 in a cycle, each
// preferring the route through its clockwise neighbour over its direct
// route. The labels returned are indices into the preference scheme used
// by protocol tests: label 0 = direct arc, label 1 = via-neighbour arc.
func BadGadgetArcs() (*Graph, []Arc) {
	arcs := []Arc{
		{1, 0, 0}, {2, 0, 0}, {3, 0, 0},
		{1, 2, 1}, {2, 3, 1}, {3, 1, 1},
	}
	return MustNew(4, arcs), arcs
}

// Degrees returns the sorted out-degree sequence, a cheap structural
// fingerprint used by generator tests.
func (g *Graph) Degrees() []int {
	d := make([]int, g.N)
	for _, a := range g.Arcs {
		d[a.From]++
	}
	sort.Ints(d)
	return d
}
