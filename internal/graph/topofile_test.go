package graph

import (
	"strings"
	"testing"
)

func TestParseTopologyBasic(t *testing.T) {
	src := `
# a small line network
nodes 3
arc 1 0 +1   # primary
arc 2 1 +1
arc 2 0 +4
`
	names := map[string]int{"+1": 0, "+4": 3}
	g, err := ParseTopology(strings.NewReader(src), func(l string) (int, bool) {
		i, ok := names[l]
		return i, ok
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || len(g.Arcs) != 3 {
		t.Fatalf("parsed %v", g)
	}
	if g.Arcs[2].Label != 3 {
		t.Fatalf("label resolution wrong: %v", g.Arcs[2])
	}
}

func TestParseTopologyIntegerLabels(t *testing.T) {
	g, err := ParseTopology(strings.NewReader("nodes 2\narc 1 0 7\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Arcs[0].Label != 7 {
		t.Fatalf("label = %d", g.Arcs[0].Label)
	}
}

func TestParseTopologyErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"arc 0 1 0\n", "missing nodes"},
		{"nodes 2\nnodes 3\n", "duplicate nodes"},
		{"nodes x\n", "bad node count"},
		{"nodes\n", "nodes wants"},
		{"nodes 0\n", "bad node count"},
		{"nodes 2\narc 1 0\n", "arc wants"},
		{"nodes 2\narc a b 0\n", "bad endpoints"},
		{"nodes 2\narc 1 0 nope\n", "unknown label"},
		{"nodes 2\nfoo\n", "unknown directive"},
		{"nodes 2\narc 1 5 0\n", "out of range"},
	}
	for _, c := range cases {
		_, err := ParseTopology(strings.NewReader(c.src), nil)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: err = %v, want mention of %q", c.src, err, c.want)
		}
	}
}

func TestTopologyRoundTrip(t *testing.T) {
	g := MustNew(3, []Arc{{From: 1, To: 0, Label: 0}, {From: 2, To: 1, Label: 1}})
	var b strings.Builder
	names := []string{"fast", "slow"}
	if err := g.WriteTopology(&b, func(i int) string { return names[i] }); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTopology(strings.NewReader(b.String()), func(l string) (int, bool) {
		for i, n := range names {
			if n == l {
				return i, true
			}
		}
		return 0, false
	})
	if err != nil {
		t.Fatal(err)
	}
	if back.N != g.N || len(back.Arcs) != len(g.Arcs) {
		t.Fatalf("round trip shape: %v", back)
	}
	for i := range g.Arcs {
		if back.Arcs[i] != g.Arcs[i] {
			t.Fatalf("arc %d: %v vs %v", i, back.Arcs[i], g.Arcs[i])
		}
	}
}

func TestTopologyRoundTripIntegerLabels(t *testing.T) {
	g := MustNew(2, []Arc{{From: 1, To: 0, Label: 9}})
	var b strings.Builder
	if err := g.WriteTopology(&b, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTopology(strings.NewReader(b.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Arcs[0].Label != 9 {
		t.Fatal("integer label round trip broken")
	}
}
