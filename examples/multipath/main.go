// Multipath: §VI's "reduction idea" in action — k-best routes under a
// total order, and full Pareto route sets under a partial (pointwise)
// order, both computed by fixpoint iteration over reduced weight sets.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"metarouting"
	"metarouting/internal/graph"
	"metarouting/internal/order"
	"metarouting/internal/ost"
	"metarouting/internal/quadrant"
	"metarouting/internal/solve"
	"metarouting/internal/value"
)

func main() {
	// --- k-best under a total order ---
	a, err := metarouting.InferString("delay(255,4)")
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(19))
	g := metarouting.RandomGraph(r, 8, 0.35, len(a.OT.F.Fns))

	fmt.Println("== 3-best delays to node 0 ==")
	kb := solve.KBest(a.OT, g, 0, 0, 3, 0)
	for u := 1; u < g.N; u++ {
		fmt.Printf("  node %d: %v\n", u, kb.Weights[u])
	}

	// --- Pareto fronts under a partial order ---
	// Weights are (delay, bandwidth) pairs under the POINTWISE order:
	// (d1,b1) ≲ (d2,b2) ⟺ d1 ≤ d2 ∧ b1 ≥ b2. Incomparable trade-offs
	// both survive — single-route solvers cannot express this; the
	// min-set transform routes over antichains instead.
	lexAlg, err := metarouting.InferString("lex(delay(64,4), bw(16))")
	if err != nil {
		log.Fatal(err)
	}
	pointwise := ost.New("delay×bw (pointwise)",
		order.New("pw", lexAlg.OT.Carrier(), func(x, y value.V) bool {
			p, q := x.(value.Pair), y.(value.Pair)
			return p.A.(int) <= q.A.(int) && p.B.(int) >= q.B.(int)
		}),
		lexAlg.OT.F)
	reg := quadrant.NewSetRegistry()
	lazy := quadrant.MinSetTransformLazy(pointwise, reg)

	g2 := metarouting.RandomGraph(r, 7, 0.4, len(pointwise.F.Fns))
	origin := reg.Intern([]value.V{value.Pair{A: 0, B: 16}})
	res := solve.Fixpoint(lazy, g2, 0, origin, 0)
	fmt.Printf("\n== Pareto fronts (delay, bandwidth), converged=%v ==\n", res.Converged)
	for u := 1; u < g2.N; u++ {
		if !res.Routed[u] {
			fmt.Printf("  node %d: no route\n", u)
			continue
		}
		front := reg.Members(res.Weights[u].(quadrant.VSet))
		fmt.Printf("  node %d: %s", u, value.FormatSet(front))
		if len(front) > 1 {
			fmt.Print("   ← genuine trade-off: no single best route")
		}
		fmt.Println()
	}

	// Cross-check one node against brute force.
	truth := solve.BruteForce(pointwise, g2, 0, value.Pair{A: 0, B: 16}, 0)
	u := pickMultiFront(res, reg, g2)
	fmt.Printf("\nbrute-force front at node %d: %s (must match above)\n", u, value.FormatSet(truth[u]))
}

func pickMultiFront(res *solve.FixpointResult, reg *quadrant.SetRegistry, g *graph.Graph) int {
	for u := 1; u < g.N; u++ {
		if res.Routed[u] && len(reg.Members(res.Weights[u].(quadrant.VSet))) > 1 {
			return u
		}
	}
	return 1
}
