// BGP-like interdomain routing with the scoped product: the network is
// partitioned into autonomous regions; inter-region arcs carry the
// "external" algebra (local-pref then hop count) and *originate* a fresh
// intra-region metric; intra-region arcs copy the external information
// and accumulate internal delay. This is exactly §II's
// S ⊙ T = (S ×lex left(T)) + (right(S) ×lex T), run through the
// asynchronous path-vector simulator.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"metarouting"
	"metarouting/internal/graph"
)

func main() {
	a, err := metarouting.InferString("scoped(lex(lp(3), hops(32)), delay(64,3))")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a.Report())

	// Build a 3-region × 4-node topology. The scoped product's function
	// set lists inter-region functions (tag 1) first, then intra-region
	// (tag 2); pick labels from the right family per arc kind.
	nInter := 0
	for _, f := range a.OT.F.Fns {
		if strings.HasPrefix(f.Name, "(1,") {
			nInter++
		}
	}
	r := rand.New(rand.NewSource(11))
	regions := graph.TwoLevel(r, 3, 4, 0.3, 3,
		func(rr *rand.Rand, _, _ int) int { return nInter + rr.Intn(len(a.OT.F.Fns)-nInter) },
		func(rr *rand.Rand, _, _ int) int { return rr.Intn(nInter) })
	g := regions.Graph
	fmt.Printf("topology: %d regions, %s\n\n", 3, g)

	// Destination 0 originates (best-pref, zero hops, zero delay).
	origin := metarouting.Pair{A: metarouting.Pair{A: 3, B: 0}, B: 0}
	out := metarouting.Simulate(a.OT, g, metarouting.SimConfig{
		Dest: 0, Origin: origin, MaxDelay: 3, Rand: r, MaxSteps: 100000,
	})
	fmt.Printf("async path-vector: converged=%v after %d messages\n", out.Converged, out.Steps)
	for u := 0; u < g.N; u++ {
		if !out.Routed[u] {
			fmt.Printf("  node %2d (region %d): no route\n", u, regions.RegionOf[u])
			continue
		}
		fmt.Printf("  node %2d (region %d): weight %-18v path %v\n",
			u, regions.RegionOf[u], out.Weights[u], out.Paths[u])
	}

	// The scoped product is monotone (Theorem 6), so the synchronous
	// fixpoint yields weights dominating every path. The asynchronous
	// protocol optimizes over loop-free paths only, so for monotone but
	// non-nondecreasing algebras its stable state can sit above the
	// walk-optimal fixpoint at some nodes — compare the two.
	bf := metarouting.BellmanFord(a.OT, g, 0, origin, 8*g.N)
	agree := 0
	for u := 0; u < g.N; u++ {
		if out.Routed[u] == bf.Routed[u] && (!out.Routed[u] || a.OT.Ord.Equiv(out.Weights[u], bf.Weights[u])) {
			agree++
		}
	}
	fmt.Printf("\nfixpoint comparison: %d/%d nodes match the synchronous walk-optimal solution\n", agree, g.N)
	fmt.Println("(differences are expected where the walk optimum is not realizable loop-free)")
}
