// BAD GADGET: persistent route oscillation, live. The SPP gadget algebra
// is neither monotone nor nondecreasing — the engine derives that — and
// on the classic 4-node gadget topology the asynchronous path-vector
// protocol can never quiesce, reproducing Varadhan et al.'s oscillation
// (the paper's [16]) and the provable incorrectness of BGP noted in §I.
// Flipping the topology so only direct routes exist converges instantly.
//
// This demonstration is guarded by committed regression tests:
// internal/protocol/validate runs the gadget (and the two-triangle
// wedgie) as oscillation cases — no quiescence within 4× the
// strictly-increasing round bound — in both simulator engines.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"metarouting"
	"metarouting/internal/graph"
	"metarouting/internal/prop"
)

func main() {
	a, err := metarouting.InferString("gadget")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("the SPP gadget algebra, as the engine sees it:")
	fmt.Printf("  M=%v (%s)\n", a.Props.Status(prop.MLeft), a.Props.Get(prop.MLeft).Witness)
	fmt.Printf("  ND=%v I=%v — %s\n\n",
		a.Props.Status(prop.NDLeft), a.Props.Status(prop.ILeft), a.Verdict())

	badG, _ := graph.BadGadgetArcs()
	for seed := int64(1); seed <= 3; seed++ {
		r := rand.New(rand.NewSource(seed))
		out := metarouting.Simulate(a.OT, badG, metarouting.SimConfig{
			Dest: 0, Origin: 0, MaxSteps: 5000, MaxDelay: 2, Rand: r,
		})
		fmt.Printf("BAD GADGET, seed %d: converged=%v after %d messages (budget-capped oscillation)\n",
			seed, out.Converged, out.Steps)
	}

	// The same algebra on a satisfiable topology (direct routes only).
	goodG := graph.MustNew(4, []graph.Arc{
		{From: 1, To: 0, Label: 0}, {From: 2, To: 0, Label: 0}, {From: 3, To: 0, Label: 0},
	})
	r := rand.New(rand.NewSource(1))
	out := metarouting.Simulate(a.OT, goodG, metarouting.SimConfig{
		Dest: 0, Origin: 0, MaxDelay: 2, Rand: r,
	})
	fmt.Printf("\ndirect-only topology: converged=%v after %d messages\n", out.Converged, out.Steps)

	// Contrast with an increasing algebra on the same cyclic topology:
	// the I property guarantees convergence no matter the schedule.
	d, _ := metarouting.InferString("delay(32,2)")
	out2 := metarouting.Simulate(d.OT, badG, metarouting.SimConfig{
		Dest: 0, Origin: 0, MaxDelay: 2, Rand: r,
	})
	fmt.Printf("delay algebra on the gadget topology: converged=%v after %d messages (I ⇒ convergence)\n",
		out2.Converged, out2.Steps)
}
