// Bandwidth-delay: the paper's running example, end to end.
//
// Selecting routes by bandwidth first and delay second with a plain
// lexicographic product is NOT monotone — the engine derives why (the
// bandwidth component is not cancellative: two wide flows collapse at a
// bottleneck), and on real topologies greedy route computation silently
// returns suboptimal routes. The scoped product ⊙ fixes it (§V): making
// every bandwidth change *originate* a fresh delay restores monotonicity,
// so global optima are computable again.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"metarouting"
	"metarouting/internal/prop"
)

func main() {
	lex, err := metarouting.InferString("lex(bw(4), delay(64,4))")
	if err != nil {
		log.Fatal(err)
	}
	scoped, err := metarouting.InferString("scoped(bw(4), delay(64,4))")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== the algebra level ==")
	for _, a := range []*metarouting.Algebra{lex, scoped} {
		j := a.Props.Get(prop.MLeft)
		fmt.Printf("%-30s M=%v  [%s]\n", a.OT.Name, j.Status, j.Rule)
	}
	fmt.Println("\nwhy lex fails: N(bw) =", lex.Children[0].Props.Get(prop.NLeft).Witness)

	fmt.Println("\n== the network level ==")
	origin := metarouting.Pair{A: 4, B: 0} // full bandwidth, zero delay at the destination
	r := rand.New(rand.NewSource(3))

	// Hunt for a topology where the non-monotone lex algebra actually
	// loses: the fixpoint's answer fails to dominate some path.
	var bad *metarouting.Graph
	for i := 0; i < 500 && bad == nil; i++ {
		g := metarouting.RandomGraph(r, 7, 0.35, len(lex.OT.F.Fns))
		res := metarouting.BellmanFord(lex.OT, g, 0, origin, 6*g.N)
		if ok, _ := metarouting.VerifyGlobal(lex.OT, g, 0, origin, res); !ok {
			bad = g
		}
	}
	if bad == nil {
		fmt.Println("no counterexample topology found (unlucky seed)")
		return
	}
	lexRes := metarouting.BellmanFord(lex.OT, bad, 0, origin, 6*bad.N)
	_, why := metarouting.VerifyGlobal(lex.OT, bad, 0, origin, lexRes)
	fmt.Printf("lex(bw, delay) on %v: NOT globally optimal — %s\n", bad, why)

	scRes := metarouting.BellmanFord(scoped.OT, bad, 0, origin, 6*bad.N)
	fmt.Printf("scoped(bw, delay) on the same topology: converged=%v\n", scRes.Converged)
	if ok, why := metarouting.VerifyGlobal(scoped.OT, bad, 0, origin, scRes); ok {
		fmt.Println("scoped product: globally optimal ✓ — local autonomy compatible with global optimality")
	} else {
		// The M-only guarantee is path domination; simple-path optimality
		// can still differ when the optimum is realized by a walk.
		fmt.Println("scoped product (simple-path check):", why)
	}
}
