// Protocolkit: the paper's equation, end to end —
//
//	routing protocol = routing language + routing algorithm + proof
//
// Write an algebra in the language, ask which algorithms its derived
// properties license, get a causal refusal for the ones they don't, and
// build a multi-destination RIB with the one they do.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"metarouting"
)

func main() {
	for _, src := range []string{
		"delay(255,3)",
		"scoped(bw(4), delay(64,3))",
		"lex(bw(4), delay(64,3))",
	} {
		a, err := metarouting.InferString(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s → licensed: %v\n", src, metarouting.LicensedAlgorithms(a))
	}

	// A refusal carries the engine's causal explanation.
	bad, _ := metarouting.InferString("lex(bw(4), delay(64,3))")
	if _, err := metarouting.NewRouter(bad, metarouting.AlgoFixpoint); err != nil {
		fmt.Printf("\nrefusal for lex(bw, delay) + fixpoint:\n%v\n", err)
	}

	// Build the licensed protocol and a full RIB.
	good, _ := metarouting.InferString("delay(255,3)")
	rt, err := metarouting.NewRouter(good, metarouting.AlgoPathVector)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nguarantee:", rt.Guarantee())

	r := rand.New(rand.NewSource(4))
	g := metarouting.RandomGraph(r, 8, 0.35, len(good.OT.F.Fns))
	rib, err := metarouting.BuildRIB(good.OT, g, map[int]metarouting.V{0: 0, 5: 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nRIB (destinations 0 and 5):")
	for _, dest := range []int{0, 5} {
		for u := 0; u < g.N; u++ {
			if e := rib.Lookup(u, dest); e != nil && u != dest {
				path, _ := rib.Forward(u, dest)
				fmt.Printf("  %d→%d: weight %-4v nexthops %v path %v\n",
					u, dest, e.Weight, e.NextHops, path)
			}
		}
	}
}
