// Failover: dynamic routing under link failures. An increasing algebra
// guarantees reconvergence after any topology change; this example cuts
// the primary path mid-run, watches the protocol fail over to the
// backup, then revives the link and watches routes return.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"metarouting"
	"metarouting/internal/graph"
	"metarouting/internal/protocol"
)

func main() {
	a, err := metarouting.InferString("delay(64,4)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("algebra:", a.OT.Name, "—", a.Verdict())

	// A ring of 6 nodes with a chord: plenty of alternate routes.
	r := rand.New(rand.NewSource(9))
	g := graph.Ring(r, 6, graph.UniformLabels(4))

	// Find the arc 1 → 0 (node 1's primary exit).
	primary := -1
	for i, arc := range g.Arcs {
		if arc.From == 1 && arc.To == 0 {
			primary = i
		}
	}

	run := func(label string, events []protocol.LinkEvent) {
		out := metarouting.Simulate(a.OT, g, metarouting.SimConfig{
			Dest: 0, Origin: 0, MaxDelay: 2, Rand: rand.New(rand.NewSource(1)),
			Events: events,
		})
		fmt.Printf("\n%s: converged=%v after %d messages\n", label, out.Converged, out.Steps)
		for u := 1; u < g.N; u++ {
			if out.Routed[u] {
				fmt.Printf("  node %d: weight %v via %v\n", u, out.Weights[u], out.Paths[u])
			} else {
				fmt.Printf("  node %d: no route\n", u)
			}
		}
	}

	run("steady state", nil)
	run("primary 1→0 fails at t=40", []protocol.LinkEvent{
		{At: 40, Arc: primary, Fail: true},
	})
	run("failure then revival at t=200", []protocol.LinkEvent{
		{At: 40, Arc: primary, Fail: true},
		{At: 200, Arc: primary, Fail: false},
	})
}
