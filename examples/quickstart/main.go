// Quickstart: define a routing algebra in the metarouting language, let
// the engine derive its properties, and route a small network with the
// algorithm those properties license.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"metarouting"
)

func main() {
	// A QoS-ish algebra: shortest delay, ties broken by widest bandwidth,
	// partitioned BGP-style so regions keep local autonomy.
	a, err := metarouting.InferString("scoped(delay(255,4), bw(8))")
	if err != nil {
		log.Fatal(err)
	}

	// The "type check": every property below was derived by the exact
	// rules of the paper, with provenance.
	fmt.Println(a.Report())
	fmt.Println("verdict:", a.Verdict())

	// Route a random 10-node network toward node 0. The origin weight is
	// (0 delay, full bandwidth) — freshly originated at the destination.
	r := rand.New(rand.NewSource(7))
	g := metarouting.RandomGraph(r, 10, 0.3, len(a.OT.F.Fns))
	origin := metarouting.Pair{A: 0, B: 8}

	res := metarouting.BellmanFord(a.OT, g, 0, origin, 0)
	fmt.Printf("\nbellman-ford: converged=%v in %d rounds, loop-free=%v\n",
		res.Converged, res.Rounds, res.LoopFree())
	for u := 0; u < g.N; u++ {
		if res.Routed[u] {
			path, _ := res.Route(u)
			fmt.Printf("  node %d: weight %v via %v\n", u, res.Weights[u], path)
		}
	}

	// Because the algebra is monotone (M), the solution provably
	// dominates every alternative path; check it against brute force.
	if ok, why := metarouting.VerifyGlobal(a.OT, g, 0, origin, res); ok {
		fmt.Println("globally optimal ✓")
	} else {
		fmt.Println("global check:", why)
	}
}
