// OSPF-like areas with the Δ partition (§II): unlike the scoped product,
// inter-area arcs transform *both* components — Δ behaves like an
// ordinary lexicographic product in addition to its internal-only mode.
// Theorem 7 therefore demands more of the operands: M(SΔT) needs
// N(S) ∨ C(T) on top of M(S)∧M(T). This example shows both sides:
// origin Δ delay is monotone (origin is cancellative), bw Δ delay is not.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"metarouting"
	"metarouting/internal/prop"
)

func main() {
	good, err := metarouting.InferString("delta(origin(3), delay(64,3))")
	if err != nil {
		log.Fatal(err)
	}
	bad, err := metarouting.InferString("delta(bw(6), delay(64,3))")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Theorem 7 at work ==")
	for _, a := range []*metarouting.Algebra{good, bad} {
		fmt.Printf("%-28s M=%-6v ND=%-6v I=%-6v — %s\n", a.OT.Name,
			a.Props.Status(prop.MLeft), a.Props.Status(prop.NDLeft),
			a.Props.Status(prop.ILeft), a.Verdict())
	}
	fmt.Println("\ncompare: scoped(bw, delay) needs only M∧M (Theorem 6):")
	sc, _ := metarouting.InferString("scoped(bw(6), delay(64,3))")
	fmt.Printf("%-28s M=%v\n", sc.OT.Name, sc.Props.Status(prop.MLeft))

	// Route with the monotone Δ algebra: an area-partitioned network
	// where inter-area arcs stamp the backbone origin code and re-derive
	// delay, and intra-area arcs accumulate delay under a fixed code.
	r := rand.New(rand.NewSource(23))
	g := metarouting.RandomGraph(r, 9, 0.35, len(good.OT.F.Fns))
	origin := metarouting.Pair{A: 0, B: 0}
	res := metarouting.BellmanFord(good.OT, g, 0, origin, 0)
	fmt.Printf("\ndelta(origin, delay) on %v: converged=%v\n", g, res.Converged)
	if ok, why := metarouting.VerifyGlobal(good.OT, g, 0, origin, res); ok {
		fmt.Println("globally optimal ✓ (Theorem 7's conditions hold)")
	} else {
		fmt.Println("global check:", why)
	}
}
