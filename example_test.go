package metarouting_test

import (
	"fmt"
	"math/rand"

	"metarouting"
)

// Example demonstrates the core metarouting workflow: write an algebra,
// read off its derived guarantees, and route a network with a licensed
// algorithm.
func Example() {
	a, err := metarouting.InferString("scoped(bw(4), delay(64,4))")
	if err != nil {
		panic(err)
	}
	fmt.Println("monotone:", a.SupportsGlobalOptima())
	fmt.Println("increasing:", a.SupportsLocalOptima())
	fmt.Println("licensed:", metarouting.LicensedAlgorithms(a))
	// Output:
	// monotone: true
	// increasing: false
	// licensed: [fixpoint]
}

// ExampleExplain shows the causal diagnosis of a property failure — the
// paper's "deduce exactly which components are at fault" promise.
func ExampleExplain() {
	a, _ := metarouting.InferString("lex(bw(4), delay(16,2))")
	out := metarouting.Explain(a, "M")
	// Print just the culprit lines.
	fmt.Println(contains(out, "N(bw(4))"))
	fmt.Println(contains(out, "scoped product"))
	// Output:
	// true
	// true
}

// ExampleSimplify normalizes an expression without changing its
// properties.
func ExampleSimplify() {
	e := metarouting.MustParse("lex(lex(bw(4), delay(4,1)), unit)")
	fmt.Println(metarouting.Simplify(e))
	// Output:
	// lex(bw(4), delay(4,1))
}

// ExampleDijkstra routes a small network with the generalized Dijkstra
// algorithm.
func ExampleDijkstra() {
	a, _ := metarouting.InferString("hops(16)")
	g, _ := metarouting.NewGraph(3, []metarouting.Arc{
		{From: 1, To: 0, Label: 0},
		{From: 2, To: 1, Label: 0},
	})
	res := metarouting.Dijkstra(a.OT, g, 0, 0)
	fmt.Println(res.Weights[2])
	// Output:
	// 2
}

// ExampleSimulate runs the asynchronous path-vector protocol.
func ExampleSimulate() {
	a, _ := metarouting.InferString("delay(32,2)")
	g, _ := metarouting.NewGraph(3, []metarouting.Arc{
		{From: 1, To: 0, Label: 0},
		{From: 2, To: 1, Label: 0},
	})
	out := metarouting.Simulate(a.OT, g, metarouting.SimConfig{
		Dest: 0, Origin: 0, Rand: rand.New(rand.NewSource(1)),
	})
	fmt.Println(out.Converged, out.Weights[2])
	// Output:
	// true 2
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
