module metarouting

go 1.22
