// Benchmarks of the unified execution layer: every solver plus the
// protocol simulator, dynamic vs compiled backend on the same finite
// algebra and topology. The measured speedups are recorded in
// DESIGN.md §4. Run with
//
//	go test -bench=EngineDynamicVsCompiled -benchmem
package metarouting

import (
	"math/rand"
	"testing"

	"metarouting/internal/baselib"
	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/protocol"
	"metarouting/internal/solve"
	"metarouting/internal/value"
)

// engineBench builds the dynamic and compiled backends for the standard
// finite hot-path algebra (delay(255,4): 256-element carrier) and a
// random 128-node graph, then runs fn under each as sub-benchmarks.
func engineBench(b *testing.B, n int, fn func(b *testing.B, eng exec.Algebra, g *graph.Graph)) {
	a, err := core.InferString("delay(255,4)")
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(17))
	g := graph.Random(r, n, 0.2, graph.UniformLabels(4))
	for _, mode := range []exec.Mode{exec.ModeDynamic, exec.ModeCompiled} {
		eng, err := exec.New(a.OT, mode, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(string(mode), func(b *testing.B) { fn(b, eng, g) })
	}
}

func BenchmarkEngineDynamicVsCompiledDijkstra(b *testing.B) {
	engineBench(b, 128, func(b *testing.B, eng exec.Algebra, g *graph.Graph) {
		for i := 0; i < b.N; i++ {
			solve.DijkstraEngine(eng, g, 0, 0)
		}
	})
}

func BenchmarkEngineDynamicVsCompiledDijkstraHeap(b *testing.B) {
	engineBench(b, 128, func(b *testing.B, eng exec.Algebra, g *graph.Graph) {
		for i := 0; i < b.N; i++ {
			solve.DijkstraHeapEngine(eng, g, 0, 0)
		}
	})
}

func BenchmarkEngineDynamicVsCompiledBellmanFord(b *testing.B) {
	engineBench(b, 128, func(b *testing.B, eng exec.Algebra, g *graph.Graph) {
		for i := 0; i < b.N; i++ {
			solve.BellmanFordEngine(eng, g, 0, 0, 0)
		}
	})
}

func BenchmarkEngineDynamicVsCompiledGaussSeidel(b *testing.B) {
	engineBench(b, 128, func(b *testing.B, eng exec.Algebra, g *graph.Graph) {
		for i := 0; i < b.N; i++ {
			solve.GaussSeidelEngine(eng, g, 0, 0, 0)
		}
	})
}

func BenchmarkEngineDynamicVsCompiledKBest(b *testing.B) {
	engineBench(b, 48, func(b *testing.B, eng exec.Algebra, g *graph.Graph) {
		for i := 0; i < b.N; i++ {
			solve.KBestEngine(eng, g, 0, 0, 4, 0)
		}
	})
}

func BenchmarkEngineDynamicVsCompiledProtocol(b *testing.B) {
	engineBench(b, 24, func(b *testing.B, eng exec.Algebra, g *graph.Graph) {
		r := rand.New(rand.NewSource(23))
		for i := 0; i < b.N; i++ {
			protocol.RunEngine(eng, g, protocol.Config{
				Dest: 0, Origin: 0, MaxDelay: 3, Rand: r,
			})
		}
	})
}

func BenchmarkEngineDynamicVsCompiledClosure(b *testing.B) {
	bi := baselib.MinPlus(1024)
	r := rand.New(rand.NewSource(29))
	g := graph.Random(r, 24, 0.25, graph.UniformLabels(4))
	weights := []value.V{1, 2, 3, 4}
	run := func(b *testing.B, sr exec.Semiring) {
		for i := 0; i < b.N; i++ {
			solve.ClosureEngine(sr, g, weights, 0)
		}
	}
	b.Run("dynamic", func(b *testing.B) { run(b, exec.NewDynamicSemiring(bi)) })
	comp, err := exec.CompileSemiring(bi)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("compiled", func(b *testing.B) { run(b, comp) })
}
