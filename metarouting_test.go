package metarouting_test

import (
	"math/rand"
	"strings"
	"testing"

	"metarouting"
)

// TestPublicAPIEndToEnd drives the whole public surface the way the
// README does: parse → infer → report/explain → route → verify →
// simulate.
func TestPublicAPIEndToEnd(t *testing.T) {
	e, err := metarouting.Parse("scoped(bw(4), delay(64,4))")
	if err != nil {
		t.Fatal(err)
	}
	a, err := metarouting.Infer(e)
	if err != nil {
		t.Fatal(err)
	}
	if !a.SupportsGlobalOptima() {
		t.Fatal("scoped(bw, delay) must be monotone")
	}
	if a.SupportsDijkstra() {
		t.Fatal("scoped products are not ND — Dijkstra must not be licensed")
	}
	if !strings.Contains(a.Report(), "M") {
		t.Fatal("report must list properties")
	}
	if !strings.Contains(metarouting.Explain(a, "M"), "Theorem 6") {
		t.Fatal("explain must name the rule")
	}

	r := rand.New(rand.NewSource(1))
	g := metarouting.RandomGraph(r, 9, 0.3, len(a.OT.F.Fns))
	origin := metarouting.Pair{A: 4, B: 0}
	res := metarouting.BellmanFord(a.OT, g, 0, origin, 0)
	if !res.Converged {
		t.Fatal("fixpoint must converge on a monotone algebra")
	}
	if !res.LoopFree() {
		t.Fatal("solution must be loop-free")
	}
	if ok, why := metarouting.VerifyLocal(a.OT, g, 0, origin, res); !ok {
		t.Fatalf("stable check: %s", why)
	}

	out := metarouting.Simulate(a.OT, g, metarouting.SimConfig{
		Dest: 0, Origin: origin, MaxDelay: 2, Rand: r, MaxSteps: 100000,
	})
	if out.Steps == 0 {
		t.Fatal("simulation must deliver messages")
	}
}

func TestPublicInferString(t *testing.T) {
	a, err := metarouting.InferString("delay(32,2)")
	if err != nil {
		t.Fatal(err)
	}
	if !a.SupportsLocalOptima() || !a.SupportsDijkstra() {
		t.Fatal("delay supports everything")
	}
	if _, err := metarouting.InferString("nosuch"); err == nil {
		t.Fatal("unknown base must error")
	}
}

func TestPublicSimplify(t *testing.T) {
	e := metarouting.MustParse("lex(lex(bw(4), delay(4,1)), unit)")
	if got := metarouting.Simplify(e).String(); got != "lex(bw(4), delay(4,1))" {
		t.Fatalf("Simplify = %s", got)
	}
}

func TestPublicGraphConstruction(t *testing.T) {
	g, err := metarouting.NewGraph(3, []metarouting.Arc{{From: 1, To: 0, Label: 0}, {From: 2, To: 1, Label: 0}})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := metarouting.InferString("hops(8)")
	res := metarouting.Dijkstra(a.OT, g, 0, 0)
	if res.Weights[2] != 2 {
		t.Fatalf("hops(2→0) = %v", res.Weights[2])
	}
	if ok, why := metarouting.VerifyGlobal(a.OT, g, 0, 0, res); !ok {
		t.Fatal(why)
	}
	if _, err := metarouting.NewGraph(1, []metarouting.Arc{{From: 0, To: 5, Label: 0}}); err == nil {
		t.Fatal("bad arcs must be rejected")
	}
}

func TestPublicBaseNames(t *testing.T) {
	names := metarouting.BaseNames()
	want := map[string]bool{"delay": false, "bw": false, "gadget": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("base %q missing", n)
		}
	}
}

func TestPublicDefaultOptions(t *testing.T) {
	opt := metarouting.DefaultOptions()
	if !opt.Fallback {
		t.Fatal("default options must enable fallback")
	}
	a, err := metarouting.InferWith(metarouting.MustParse("tags(2)"), opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.OT == nil {
		t.Fatal("algebra missing")
	}
}

// TestExperimentsSmoke: the façade's suite runner produces all 18 tables.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tables := metarouting.Experiments(7)
	if len(tables) != 18 {
		t.Fatalf("got %d tables", len(tables))
	}
	for _, tab := range tables {
		if strings.Contains(tab, "MISMATCH") {
			t.Fatalf("mismatch in:\n%s", tab)
		}
	}
}
