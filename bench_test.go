// Benchmarks regenerating every table/figure of the paper (E1–E18, see
// EXPERIMENTS.md) plus micro-benchmarks of the core operations and the
// ablations called out in DESIGN.md §4. Run with
//
//	go test -bench=. -benchmem
package metarouting

import (
	"math/rand"
	"testing"

	"metarouting/internal/baselib"
	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/expt"
	"metarouting/internal/graph"
	"metarouting/internal/ost"
	"metarouting/internal/protocol"
	"metarouting/internal/solve"
	"metarouting/internal/value"
)

// --- one benchmark per experiment table/figure ---

func BenchmarkE1Quadrants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.QuadrantsTable()
	}
}

func BenchmarkE2GlobalOptimaValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.GlobalOptimaValidation(int64(i), 40)
	}
}

func BenchmarkE3LocalOptimaValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.LocalOptimaValidation(int64(i), 40)
	}
}

func BenchmarkE4LexSemigroupLaws(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.LexSemigroupLaws(int64(i), 40)
	}
}

func BenchmarkE5Corollaries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.CorollaryValidation(int64(i), 30)
	}
}

func BenchmarkE6BandwidthDelayLex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.BandwidthDelayLex()
	}
}

func BenchmarkE7PolicyPartitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.PolicyPartitionValidation(int64(i), 30)
	}
}

func BenchmarkE8SufficientVsExact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.SufficientVsExact(int64(i), 60)
	}
}

func BenchmarkE9Szendrei(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.SzendreiBoundedMetrics()
	}
}

func BenchmarkE10Reductions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.ReductionLaws(int64(i))
	}
}

func BenchmarkE11OptimaOnGraphs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.OptimaOnGraphs(int64(i), 5)
	}
}

func BenchmarkE12ConvergenceDynamics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.ConvergenceDynamics(int64(i), 4)
	}
}

func BenchmarkE13InferenceVsModelCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.InferenceVsModelCheck(int64(i))
	}
}

// --- ablation: exact rules vs model checking (DESIGN.md §4) ---

func benchInfer(b *testing.B, src string, fallbackOnly bool) {
	e := core.MustParse(src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fallbackOnly {
			a, err := core.InferWith(e, core.Options{Fallback: false})
			if err != nil {
				b.Fatal(err)
			}
			chk := ost.New("chk", a.OT.Ord, a.OT.F)
			chk.CheckAll(nil, 0)
		} else {
			if _, err := core.InferWith(e, core.Options{Fallback: false}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkInferRulesShallow(b *testing.B) { benchInfer(b, "lex(bw(8), delay(8,2))", false) }
func BenchmarkModelCheckShallow(b *testing.B) { benchInfer(b, "lex(bw(8), delay(8,2))", true) }
func BenchmarkInferRulesDeep(b *testing.B) {
	benchInfer(b, "scoped(lex(lp(3), hops(8)), lex(hops(8), bw(4)))", false)
}
func BenchmarkModelCheckDeep(b *testing.B) {
	benchInfer(b, "scoped(lex(lp(3), hops(8)), lex(hops(8), bw(4)))", true)
}

// --- ablation: Dijkstra vs Bellman–Ford on monotone+ND algebras ---

func benchSolver(b *testing.B, n int, dijkstra bool) {
	a, err := core.InferString("delay(0,4)")
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	g := graph.Random(r, n, 0.2, graph.UniformLabels(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dijkstra {
			solve.Dijkstra(a.OT, g, 0, 0)
		} else {
			solve.BellmanFord(a.OT, g, 0, 0, 0)
		}
	}
}

func BenchmarkDijkstra32(b *testing.B)     { benchSolver(b, 32, true) }
func BenchmarkBellmanFord32(b *testing.B)  { benchSolver(b, 32, false) }
func BenchmarkDijkstra128(b *testing.B)    { benchSolver(b, 128, true) }
func BenchmarkBellmanFord128(b *testing.B) { benchSolver(b, 128, false) }

// --- ablation: scoped vs plain lex weight application ---

func benchApply(b *testing.B, src string) {
	a, err := core.InferString(src)
	if err != nil {
		b.Fatal(err)
	}
	fns := a.OT.F.Fns
	w := value.V(value.Pair{A: 4, B: 0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w2 := w
		for _, f := range fns {
			w2 = f.Apply(w2)
		}
	}
}

func BenchmarkApplyLex(b *testing.B)    { benchApply(b, "lex(bw(4), delay(64,4))") }
func BenchmarkApplyScoped(b *testing.B) { benchApply(b, "scoped(bw(4), delay(64,4))") }

// --- protocol simulator throughput ---

func BenchmarkProtocolDelay(b *testing.B) {
	a, err := core.InferString("delay(255,3)")
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	g := graph.Random(r, 16, 0.25, graph.UniformLabels(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		protocol.Run(a.OT, g, protocol.Config{Dest: 0, Origin: 0, MaxDelay: 3, Rand: r})
	}
}

func BenchmarkProtocolBadGadget(b *testing.B) {
	a, err := core.InferString("gadget")
	if err != nil {
		b.Fatal(err)
	}
	g, _ := graph.BadGadgetArcs()
	r := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		protocol.Run(a.OT, g, protocol.Config{Dest: 0, Origin: 0, MaxSteps: 1000, MaxDelay: 2, Rand: r})
	}
}

// --- inference throughput on the flagship expression ---

func BenchmarkInferBGPShape(b *testing.B) {
	e := core.MustParse("scoped(lex(lp(4), hops(16)), lex(hops(16), bw(8)))")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.InferWith(e, core.Options{Fallback: false}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation: compiled tables vs dynamic dispatch in the solver ---

func benchCompiled(b *testing.B, n int, compiled bool) {
	a, err := core.InferString("delay(255,4)")
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	g := graph.Random(r, n, 0.2, graph.UniformLabels(4))
	mode := exec.ModeDynamic
	if compiled {
		mode = exec.ModeCompiled
	}
	eng, err := exec.New(a.OT, mode, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solve.BellmanFordEngine(eng, g, 0, 0, 0)
	}
}

func BenchmarkDynamicBF64(b *testing.B)  { benchCompiled(b, 64, false) }
func BenchmarkCompiledBF64(b *testing.B) { benchCompiled(b, 64, true) }

// --- new-experiment benches ---

func BenchmarkE14CompositeGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.CompositeMetricGap(int64(i), 60)
	}
}

func BenchmarkE15KBestClosure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.KBestAndClosure(int64(i), 5)
	}
}

func BenchmarkE16DynamicRouting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.DynamicRouting(int64(i), 5)
	}
}

func BenchmarkKBestSolver(b *testing.B) {
	a, err := core.InferString("delay(4095,4)")
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	g := graph.Random(r, 24, 0.25, graph.UniformLabels(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solve.KBest(a.OT, g, 0, 0, 4, 0)
	}
}

func BenchmarkClosureMinPlus(b *testing.B) {
	bsgAlg := baselib.MinPlus(4096)
	r := rand.New(rand.NewSource(4))
	g := graph.Random(r, 24, 0.25, graph.UniformLabels(4))
	weights := []value.V{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solve.Closure(bsgAlg, g, weights, 0)
	}
}

func benchHeapDijkstra(b *testing.B, n int, useHeap bool) {
	a, err := core.InferString("delay(255,4)")
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(6))
	g := graph.Random(r, n, 0.1, graph.UniformLabels(4))
	eng, err := exec.New(a.OT, exec.ModeCompiled, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if useHeap {
			solve.DijkstraHeapEngine(eng, g, 0, 0)
		} else {
			solve.DijkstraEngine(eng, g, 0, 0)
		}
	}
}

func BenchmarkDijkstraScan256(b *testing.B) { benchHeapDijkstra(b, 256, false) }
func BenchmarkDijkstraHeap256(b *testing.B) { benchHeapDijkstra(b, 256, true) }

func BenchmarkE17ConvergenceScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.ConvergenceScaling(int64(i), 2)
	}
}

func BenchmarkGaussSeidel128(b *testing.B) {
	a, err := core.InferString("delay(0,4)")
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	g := graph.Random(r, 128, 0.2, graph.UniformLabels(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solve.GaussSeidel(a.OT, g, 0, 0, 0)
	}
}

func BenchmarkE18LanguageMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.LanguageMatrix(int64(i))
	}
}
