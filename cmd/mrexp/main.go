// Command mrexp runs the paper-reproduction experiment suite (E1–E18)
// and prints the regenerated tables; see EXPERIMENTS.md for the index
// and the paper-vs-measured record.
//
// Usage:
//
//	mrexp                 # run everything
//	mrexp -only E7,E12    # a subset
//	mrexp -seed 7         # different randomization
package main

import (
	"flag"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"metarouting/internal/expt"
)

func main() {
	var (
		seed     = flag.Int64("seed", 42, "random seed for validation sweeps")
		only     = flag.String("only", "", "comma-separated experiment IDs, e.g. E2,E7")
		parallel = flag.Bool("parallel", false, "run experiments concurrently (output order preserved)")
	)
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	runners := expt.Runners(*seed)
	selected := runners[:0:0]
	for _, r := range runners {
		if len(want) == 0 || want[r.ID] {
			selected = append(selected, r)
		}
	}

	if !*parallel {
		for _, r := range selected {
			fmt.Println(r.Run().Render())
		}
		return
	}
	// Fan the experiments across cores; print in index order as results
	// land.
	outputs := make([]string, len(selected))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, r := range selected {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outputs[i] = r.Run().Render()
		}()
	}
	wg.Wait()
	for _, out := range outputs {
		fmt.Println(out)
	}
}
