// Command mrexp runs the paper-reproduction experiment suite (E1–E18)
// and prints the regenerated tables; see EXPERIMENTS.md for the index
// and the paper-vs-measured record.
//
// Usage:
//
//	mrexp                 # run everything
//	mrexp -only E7,E12    # a subset
//	mrexp -seed 7         # different randomization
//	mrexp -engine dynamic # pin the execution backend
//	mrexp -json           # per-experiment wall time + engine as JSON lines
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"metarouting/internal/cliflag"
	"metarouting/internal/expt"
)

// record is the -json output shape, one line per experiment.
type record struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	WallMS float64 `json:"wall_ms"`
	Engine string  `json:"engine"`
}

func main() {
	var (
		seed     = flag.Int64("seed", 42, "random seed for validation sweeps")
		only     = flag.String("only", "", "comma-separated experiment IDs, e.g. E2,E7")
		parallel = flag.Bool("parallel", false, "run experiments concurrently (output order preserved)")
		engine   = cliflag.Engine(nil)
		jsonOut  = flag.Bool("json", false, "emit per-experiment wall time and engine as JSON lines instead of tables")
	)
	flag.Parse()

	mode, err := cliflag.ApplyEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrexp:", err)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	runners := expt.Runners(*seed)
	selected := runners[:0:0]
	for _, r := range runners {
		if len(want) == 0 || want[r.ID] {
			selected = append(selected, r)
		}
	}

	emit := func(i int, outputs []string) {
		t0 := time.Now()
		tbl := selected[i].Run()
		wall := time.Since(t0)
		if *jsonOut {
			line, err := json.Marshal(record{
				ID: tbl.ID, Title: tbl.Title,
				WallMS: float64(wall.Microseconds()) / 1e3,
				Engine: string(mode),
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "mrexp:", err)
				os.Exit(1)
			}
			outputs[i] = string(line)
		} else {
			outputs[i] = tbl.Render()
		}
	}

	outputs := make([]string, len(selected))
	if !*parallel {
		for i := range selected {
			emit(i, outputs)
			fmt.Println(outputs[i])
		}
		return
	}
	// Fan the experiments across cores; print in index order once all
	// results land.
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range selected {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			emit(i, outputs)
		}()
	}
	wg.Wait()
	for _, out := range outputs {
		fmt.Println(out)
	}
}
