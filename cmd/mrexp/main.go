// Command mrexp runs the paper-reproduction experiment suite (E1–E18)
// and prints the regenerated tables; see EXPERIMENTS.md for the index
// and the paper-vs-measured record.
//
// Usage:
//
//	mrexp                 # run everything
//	mrexp -only E7,E12    # a subset
//	mrexp -seed 7         # different randomization
//	mrexp -engine dynamic # pin the execution backend
//	mrexp -json           # per-experiment wall time + engine as JSON lines
//	mrexp -corpus         # run the convergence-validation corpus
//	mrexp -sim-bench      # serial vs parallel simulator throughput
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"metarouting/internal/cliflag"
	"metarouting/internal/expt"
	"metarouting/internal/protocol"
	"metarouting/internal/protocol/validate"
)

// record is the -json output shape, one line per experiment.
type record struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	WallMS float64 `json:"wall_ms"`
	Engine string  `json:"engine"`
}

func main() {
	var (
		seed     = flag.Int64("seed", 42, "random seed for validation sweeps")
		only     = flag.String("only", "", "comma-separated experiment IDs, e.g. E2,E7")
		parallel = flag.Bool("parallel", false, "run experiments concurrently (output order preserved)")
		engine   = cliflag.Engine(nil)
		jsonOut  = flag.Bool("json", false, "emit per-experiment wall time and engine as JSON lines instead of tables")

		corpus     = flag.Bool("corpus", false, "run the convergence-validation corpus instead of the experiment suite")
		corpusSeed = flag.Int64("corpus-seed", 1, "seed generating the validation corpus")
		simWorkers = flag.Int("sim-workers", 0, "parallel simulator shard count (0 = GOMAXPROCS)")
		simBench   = flag.Bool("sim-bench", false, "measure serial vs parallel simulator throughput instead of the experiment suite")
		simNodes   = flag.String("sim-nodes", "64,1000,10000", "comma-separated node counts for -sim-bench")
		simStorm   = flag.Int("sim-storm", 0, "flap-storm arcs per -sim-bench run (0 = nodes/4)")
		simCycles  = flag.Int("sim-cycles", 0, "flap cycles per stormed arc (0 = workload default)")
		outPath    = flag.String("out", "", "write -corpus/-sim-bench JSON to this file instead of stdout")
	)
	flag.Parse()

	mode, err := cliflag.ApplyEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrexp:", err)
		os.Exit(2)
	}

	if *corpus {
		os.Exit(runCorpus(*corpusSeed, *simWorkers, *jsonOut, *outPath))
	}
	if *simBench {
		os.Exit(runSimBench(*simNodes, *simWorkers, *simStorm, *simCycles, *seed, *outPath))
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	runners := expt.Runners(*seed)
	selected := runners[:0:0]
	for _, r := range runners {
		if len(want) == 0 || want[r.ID] {
			selected = append(selected, r)
		}
	}

	emit := func(i int, outputs []string) {
		t0 := time.Now()
		tbl := selected[i].Run()
		wall := time.Since(t0)
		if *jsonOut {
			line, err := json.Marshal(record{
				ID: tbl.ID, Title: tbl.Title,
				WallMS: float64(wall.Microseconds()) / 1e3,
				Engine: string(mode),
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "mrexp:", err)
				os.Exit(1)
			}
			outputs[i] = string(line)
		} else {
			outputs[i] = tbl.Render()
		}
	}

	outputs := make([]string, len(selected))
	if !*parallel {
		for i := range selected {
			emit(i, outputs)
			fmt.Println(outputs[i])
		}
		return
	}
	// Fan the experiments across cores; print in index order once all
	// results land.
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range selected {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			emit(i, outputs)
		}()
	}
	wg.Wait()
	for _, out := range outputs {
		fmt.Println(out)
	}
}

// runCorpus executes the validation corpus on the parallel engine and
// reports per-case verdicts; exit 1 when any case violates theory.
func runCorpus(seed int64, workers int, jsonOut bool, outPath string) int {
	p := protocol.NewParallel(workers)
	defer p.Close()
	results, err := validate.RunCorpus(context.Background(), p, validate.Corpus(seed), nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrexp:", err)
		return 2
	}
	var sb strings.Builder
	if jsonOut {
		enc := json.NewEncoder(&sb)
		for _, r := range results {
			if err := enc.Encode(r); err != nil {
				fmt.Fprintln(os.Stderr, "mrexp:", err)
				return 2
			}
		}
	} else {
		fmt.Fprintf(&sb, "convergence-validation corpus (seed %d, %d shards)\n", seed, p.Shards())
		fmt.Fprintf(&sb, "%-28s %-10s %-6s %8s %10s %9s %7s\n",
			"case", "expect", "pass", "rounds", "bound", "messages", "flaps")
		for _, r := range results {
			fmt.Fprintf(&sb, "%-28s %-10s %-6v %8d %10d %9d %7d\n",
				r.Case, r.Expect, r.Pass, r.Rounds, r.Bound, r.Steps, r.TotalFlaps)
			if !r.Pass {
				fmt.Fprintf(&sb, "    %s\n", r.Detail)
			}
		}
		fails := validate.Failures(results)
		fmt.Fprintf(&sb, "%d cases, %d theory violations\n", len(results), len(fails))
	}
	if err := writeOut(outPath, sb.String()); err != nil {
		fmt.Fprintln(os.Stderr, "mrexp:", err)
		return 2
	}
	if len(validate.Failures(results)) > 0 {
		return 1
	}
	return 0
}

// simBenchReport is the BENCH_sim.json shape.
type simBenchReport struct {
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Note       string                 `json:"note"`
	Runs       []validate.BenchResult `json:"runs"`
}

// runSimBench measures serial vs parallel throughput at each node count
// and emits the BENCH_sim.json report; exit 1 if any run's parallel
// Outcome diverged from the serial oracle.
func runSimBench(nodesList string, workers, storm, cycles int, seed int64, outPath string) int {
	p := protocol.NewParallel(workers)
	defer p.Close()
	report := simBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "single run per size; serial engine is the differential oracle; " +
			"on a 1-CPU host (gomaxprocs=1) no true concurrency happens — any " +
			"speedup > 1 there comes from the sharded engine's flat event wheels " +
			"and batched tick windows, not from parallelism; multi-core scaling " +
			"is unmeasured on this host",
	}
	ok := true
	for _, tok := range strings.Split(nodesList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 2 {
			fmt.Fprintf(os.Stderr, "mrexp: bad -sim-nodes entry %q\n", tok)
			return 2
		}
		res, err := validate.MeasureSim(context.Background(), p, validate.BenchSpec{
			Nodes: n, Seed: seed, Shards: workers,
			FlapArcs: storm, FlapCycles: cycles,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrexp:", err)
			return 2
		}
		ok = ok && res.Identical
		report.Runs = append(report.Runs, *res)
		fmt.Fprintf(os.Stderr, "sim-bench: %d nodes, %d arcs: %d msgs, serial %.0f msg/s, parallel %.0f msg/s, identical=%v\n",
			res.Nodes, res.Arcs, res.Messages, res.SerialMsgsPerSec, res.ParallelMsgsPerSec, res.Identical)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrexp:", err)
		return 2
	}
	if err := writeOut(outPath, string(buf)+"\n"); err != nil {
		fmt.Fprintln(os.Stderr, "mrexp:", err)
		return 2
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "mrexp: parallel outcome diverged from the serial oracle")
		return 1
	}
	return 0
}

func writeOut(path, s string) error {
	if path == "" {
		_, err := fmt.Print(s)
		return err
	}
	return os.WriteFile(path, []byte(s), 0o644)
}
