// Command metaroute is the metarouting workbench: it parses a routing
// algebra expression, derives its properties (the "type check"), and
// optionally solves a topology with the algorithm the properties license.
//
// Usage:
//
//	metaroute -expr 'scoped(bw(4), delay(64,4))'
//	metaroute -expr 'delay(255,3)' -random 12 -p 0.3 -seed 7 -solve
//	metaroute -expr 'gadget' -simulate -seed 1
//	metaroute -expr 'delay(64,4)' -solve -engine compiled
//	metaroute -list
//
// Routing work runs on the unified execution layer (internal/exec):
// -engine selects the backend — auto (default: compile finite algebras
// to dense tables, tier the rest), dynamic (always interpret), compiled
// (require dense tables; fails for infinite algebras), or tiered
// (interpret with hot-sub-carrier memo tables).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"metarouting/internal/cliflag"
	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/prop"
	"metarouting/internal/protocol"
	"metarouting/internal/router"
	"metarouting/internal/scenario"
	"metarouting/internal/solve"
	"metarouting/internal/value"
)

func main() {
	var (
		exprSrc  = flag.String("expr", "", "metarouting expression, e.g. 'scoped(bw(4), delay(64,4))'")
		list     = flag.Bool("list", false, "list base algebras and operators")
		randomN  = flag.Int("random", 0, "solve on a random graph with this many nodes")
		topoFile = flag.String("topo", "", "solve on a topology file (see internal/graph topology format)")
		scenFile = flag.String("scenario", "", "run a scenario file (expr + topology + events; implies -simulate)")
		p        = flag.Float64("p", 0.3, "random graph arc probability")
		seed     = flag.Int64("seed", 1, "random seed")
		doSolve  = flag.Bool("solve", false, "run Dijkstra/Bellman-Ford and verify optimality")
		simulate = flag.Bool("simulate", false, "run the asynchronous path-vector simulator")
		samples  = flag.Int("samples", 512, "sampled checks on infinite carriers")
		explain  = flag.String("explain", "", "explain a property (M, N, C, ND, I, SI, T) causally")
		jsonOut  = flag.Bool("json", false, "emit the property report as JSON instead of text")
		engine   = cliflag.Engine(nil)
	)
	flag.Parse()

	mode, err := cliflag.ApplyEngine(*engine)
	if err != nil {
		fatal(err)
	}

	if *list {
		fmt.Println("base algebras:")
		for _, n := range core.BaseNames() {
			spec := core.Registry[n]
			fmt.Printf("  %-24s %s\n", spec.Usage, spec.Doc)
		}
		fmt.Println("operators: lex(a,b,…) scoped(a,b) delta(a,b) union(a,b) plus(a,b) left(a) right(a) addtop(a)")
		return
	}
	if *scenFile != "" {
		runScenario(*scenFile, *seed, mode)
		return
	}
	if *exprSrc == "" {
		fmt.Fprintln(os.Stderr, "metaroute: -expr required (or -list / -scenario)")
		flag.Usage()
		os.Exit(2)
	}

	r := rand.New(rand.NewSource(*seed))
	e, err := core.Parse(*exprSrc)
	if err != nil {
		fatal(err)
	}
	a, err := core.InferWith(e, core.Options{Fallback: true, Samples: *samples, Rand: r})
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		data, err := a.MarshalReport()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	fmt.Println(a.Report())
	fmt.Println("verdict:", a.Verdict())
	if lic := router.Licensed(a); len(lic) > 0 {
		fmt.Print("licensed algorithms:")
		for _, algo := range lic {
			fmt.Printf(" %s", algo)
		}
		fmt.Println()
	} else {
		fmt.Println("licensed algorithms: none — no optimality or convergence guarantee")
	}
	if *explain != "" {
		fmt.Println()
		fmt.Print(a.Explain(prop.ID(*explain)))
	}

	if !*doSolve && !*simulate {
		return
	}
	var g *graph.Graph
	if *topoFile != "" {
		f, err := os.Open(*topoFile)
		if err != nil {
			fatal(err)
		}
		g, err = graph.ParseTopology(f, func(label string) (int, bool) {
			for i, fn := range a.OT.F.Fns {
				if fn.Name == label {
					return i, true
				}
			}
			return 0, false
		})
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		n := *randomN
		if n <= 0 {
			n = 10
		}
		g = graph.Random(r, n, *p, graph.UniformLabels(labelCount(a)))
	}
	origin := defaultOrigin(a)
	eng, err := exec.New(a.OT, mode, origin)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\ntopology: %s, destination 0, origin %s\n", g, value.Format(origin))
	fmt.Printf("engine: %s\n", eng.Mode())

	if *doSolve {
		if a.SupportsDijkstra() {
			res := solve.DijkstraEngine(eng, g, 0, origin)
			report("dijkstra", a, g, origin, res)
		} else {
			fmt.Println("dijkstra: not licensed (needs M ∧ ND ∧ total order) — skipping")
		}
		res := solve.BellmanFordEngine(eng, g, 0, origin, 6*g.N)
		report("bellman-ford", a, g, origin, res)
	}
	if *simulate {
		out := protocol.RunEngine(eng, g, protocol.Config{
			Dest: 0, Origin: origin, MaxDelay: 3, Rand: r, MaxSteps: 400 * g.N * g.N,
		})
		fmt.Printf("\nasync path-vector: %s", out.Describe())
	}
}

func report(name string, a *core.Algebra, g *graph.Graph, origin value.V, res *solve.Result) {
	fmt.Printf("\n%s: converged=%v rounds=%d loop-free=%v\n", name, res.Converged, res.Rounds, res.LoopFree())
	if g.N <= 16 {
		for u := 0; u < g.N; u++ {
			if !res.Routed[u] {
				fmt.Printf("  node %2d: no route\n", u)
				continue
			}
			path, _ := res.Route(u)
			fmt.Printf("  node %2d: weight %-12s path %v\n", u, value.Format(res.Weights[u]), path)
		}
	}
	if g.N <= 10 {
		if ok, why := solve.VerifyGlobal(a.OT, g, 0, origin, res); ok {
			fmt.Println("  globally optimal ✓ (matches brute force)")
		} else {
			fmt.Println("  not globally optimal:", why)
		}
		if res.Converged {
			if ok, why := solve.VerifyLocal(a.OT, g, 0, origin, res); ok {
				fmt.Println("  locally optimal (stable) ✓")
			} else {
				fmt.Println("  not locally optimal:", why)
			}
		}
	}
}

// labelCount bounds the usable arc-label range.
func labelCount(a *core.Algebra) int {
	if a.OT.F.Finite() {
		return a.OT.F.Size()
	}
	return 4
}

// defaultOrigin picks a sensible originated weight (⊥ when known).
func defaultOrigin(a *core.Algebra) value.V { return a.OT.DefaultOrigin() }

// runScenario loads and simulates a scenario file, printing the algebra
// verdict and the final routing state.
func runScenario(path string, seed int64, mode exec.Mode) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	s, err := scenario.Parse(f)
	if err != nil {
		fatal(err)
	}
	if err := s.UseEngine(mode); err != nil {
		fatal(err)
	}
	fmt.Printf("scenario: %s on %s, dest %d, origin %s, %d events"+"\n",
		s.Expr, s.Graph, s.Dest, value.Format(s.Origin), len(s.Events))
	fmt.Println("verdict:", s.Algebra.Verdict())
	fmt.Println("engine:", s.Engine.Mode())
	out := s.Run(seed, 0)
	fmt.Printf("\nasync path-vector: %s", out.Describe())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "metaroute:", err)
	if strings.Contains(err.Error(), "unknown base") {
		fmt.Fprintln(os.Stderr, "hint: run metaroute -list")
	}
	os.Exit(1)
}
