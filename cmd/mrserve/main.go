// Command mrserve runs the concurrent route-query service: it compiles
// an algebra expression, builds (or loads) a topology, computes snapshot
// route tables with a destination-sharded worker pool and serves them
// over HTTP/JSON while absorbing topology events with incremental,
// batched reconvergence.
//
// Usage:
//
//	mrserve -expr 'lex(delay(32,3), bw(8))' -random 64 -dests 8
//	mrserve -scenario drills/failover.mr -replay
//	mrserve -expr 'delay(64,4)' -random 48 -loadgen -out BENCH_serve.json
//	mrserve -telemetry-bench -out BENCH_telemetry.json
//	mrserve -parallel-bench -random 64 -dests 8 -out BENCH_parallel.json
//	mrserve -delta-bench -random 64 -dests 8 -out BENCH_delta.json
//	mrserve -scale-bench -scale-nodes 1000,10000,100000 -out BENCH_scale.json
//	mrserve -replica-bench -random 64 -dests 8 -out BENCH_replica.json
//	mrserve -storm-bench -storm-nodes 1000,10000,100000 -out BENCH_storm.json
//	mrserve -publish :8349 -log-dir /var/lib/mrserve        # leader
//	mrserve -follow leader:8349                              # follower
//	mrserve -follow file:/var/lib/mrserve/replica.log -oneshot
//	mrserve -follow file:/var/lib/mrserve -oneshot           # whole log dir
//
// Endpoints (v1; the retired unversioned spellings answer 404 with a
// successor-version Link header unless -legacy-api re-enables them as
// deprecated aliases answering identically plus a Deprecation header):
//
//	GET  /v1/route?from=U&dest=D  one node's route (weight, ECMP set, path)
//	POST /v1/routes               a query batch resolved against ONE pinned
//	                              snapshot — JSON {"queries":[{"from":U,
//	                              "dest":D|"prefix":P|"addr":A},...]} or,
//	                              with Content-Type application/x-mr-query,
//	                              the length-prefixed binary codec of
//	                              internal/serve/wire (the zero-allocation
//	                              fast path; see -query-bench)
//	GET  /v1/paths?dest=D         every node's forwarding path toward D
//	POST /v1/events               a JSON event batch — {"events":[...]} —
//	                              coalesced (down+up cancels, duplicate
//	                              downs dedupe) and applied as one
//	                              recompute; "async":true feeds the
//	                              intake queue instead (202, or 429 when
//	                              full under the reject policy); a bare
//	                              single-event object and the GET query
//	                              form (?arc=A&kind=fail) still work
//	GET  /v1/stats                counters: queries, swaps, events,
//	                              batches, queue depth, incremental vs
//	                              full recomputes
//	GET  /v1/metrics              Prometheus text format: query latency,
//	                              batch size and shard rebuild
//	                              histograms, convergence gauges, solver
//	                              stage counters
//	GET  /v1/slowlog              recent queries over the slow threshold
//	GET  /debug/pprof/            CPU/heap/goroutine profiles (with -pprof)
//
// Errors answer a uniform envelope:
//
//	{"error":{"code":"invalid_argument","message":"..."}}
//
// -loadgen skips HTTP and drives the server in-process with a
// concurrent query + event mix, writing throughput/latency percentiles
// and the incremental-vs-full event cost to -out (BENCH_serve.json).
// -telemetry-bench measures the telemetry overhead on the query path
// (paired instrumented vs bare servers) and writes BENCH_telemetry.json.
// -parallel-bench measures the parallel batched rebuild pipeline
// against the serial per-event path (paired storms, 1 worker vs the
// full pool) and writes BENCH_parallel.json.
// -delta-bench measures warm-start delta reconvergence against
// from-scratch rebuilds on paired small-perturbation storms and writes
// BENCH_delta.json.
// -scale-bench measures the arena-flat RIB columns against the legacy
// pointer tables (retained bytes per route entry, build time, LPM
// differential) at increasing node counts and writes BENCH_scale.json.
// -storm-bench measures paged copy-on-write columns against the flat
// layout on paired toggle storms across a size × storm-width matrix
// (-storm-nodes, -storm-arcs), flattening the paged snapshot after
// every swap for a bit-identity differential, and writes
// BENCH_storm.json.
//
// Replication: -publish ADDR streams binary snapshot/delta records to
// connected followers over TCP, and -log-dir DIR appends the same
// records to DIR/replica.log (either or both turn the leader's record
// pipeline on); -log-max-bytes N rotates the live log to a numbered
// segment once it passes N bytes, reseeding it with a fresh full
// snapshot so the live file alone always replays to current state.
// -follow HOST:PORT boots a read-only follower that
// bootstraps from the leader's full snapshot, tails deltas, and serves
// the same /v1/route, /v1/paths, /v1/prefixes, /v1/stats and
// /v1/metrics endpoints lock-free (mutations answer 403 read_only);
// -follow file:PATH replays a leader's log instead (a directory
// replays every rotated segment, then the live log, in order). Both roles honor
// ?version=N read-your-version gating (404 version_behind with the
// current version when the serving snapshot is older than N). -oneshot
// prints "role=... version=... crc=..." after boot/replay and exits —
// the CI smoke compares the two lines. -replay-storm N applies N
// deterministic arc toggles after boot (with -seed), and
// -replica-bench measures delta records against full snapshots
// (BENCH_replica.json) with a built-in follower checksum check.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"metarouting/internal/cliflag"
	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/replica"
	"metarouting/internal/scenario"
	"metarouting/internal/serve"
	"metarouting/internal/telemetry"
	"metarouting/internal/value"
)

func main() {
	var (
		exprSrc   = flag.String("expr", "lex(delay(32,3), bw(8))", "metarouting expression to serve routes for")
		scenFile  = flag.String("scenario", "", "boot from a scenario file (expr + topology + events) instead of -expr/-random")
		replay    = flag.Bool("replay", false, "with -scenario: replay its events into the live server before serving")
		randomN   = flag.Int("random", 48, "random GNP topology node count")
		p         = flag.Float64("p", 0.1, "random topology arc probability")
		seed      = flag.Int64("seed", 1, "random seed")
		dests     = flag.Int("dests", 8, "number of originated destinations (spread over the nodes; ≤0 = every node)")
		workers   = flag.Int("workers", 0, "snapshot builder worker pool size (≤0: GOMAXPROCS)")
		addr      = flag.String("addr", ":8348", "HTTP listen address")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		legacyAPI = flag.Bool("legacy-api", false, "re-enable the retired pre-/v1 unversioned HTTP aliases (default: 404 with a successor Link header)")
		slowUS    = flag.Int64("slow-query-us", 1000, "slow-query log threshold in microseconds")
		engine    = cliflag.Engine(nil)

		queueCap     = flag.Int("queue-cap", 1024, "event intake queue capacity (≤0: 1024)")
		backpressure = flag.String("backpressure", "reject", "full-queue policy for async events: reject (429) or stale (absorb, snapshot lags)")
		rebuildTO    = flag.Duration("rebuild-timeout", 0, "abandon a batched rebuild after this long, keeping the previous snapshot (0: no deadline)")

		loadgen    = flag.Bool("loadgen", false, "run the in-process load generator instead of serving HTTP")
		duration   = flag.Duration("duration", 2*time.Second, "loadgen query phase length")
		readers    = flag.Int("readers", 4, "loadgen concurrent reader goroutines")
		eventEvery = flag.Duration("event-every", 20*time.Millisecond, "loadgen topology event period (0 disables)")
		out        = flag.String("out", "", "bench modes: write the JSON report here ('' = stdout)")

		telemetryBench = flag.Bool("telemetry-bench", false, "measure telemetry overhead on the query path (paired instrumented vs bare) instead of serving")
		benchQueries   = flag.Int("bench-queries", 50000, "telemetry-bench/query-bench: queries per round per side")
		benchRounds    = flag.Int("bench-rounds", 5, "telemetry-bench/parallel-bench: measured rounds per side")

		queryBench     = flag.Bool("query-bench", false, "measure batched binary POST /v1/routes against single-query GET /v1/route over loopback HTTP instead of serving")
		queryBatchSize = flag.Int("batch-size", 256, "query-bench: queries per binary batch")

		parallelBench = flag.Bool("parallel-bench", false, "measure the batched parallel rebuild pipeline against the serial per-event path instead of serving")
		stormEvents   = flag.Int("storm-events", 32, "parallel-bench: link toggles per storm")

		deltaBench     = flag.Bool("delta-bench", false, "measure warm-start delta reconvergence against from-scratch rebuilds on small-perturbation storms instead of serving")
		deltaStormArcs = flag.Int("delta-storm-arcs", 4, "delta-bench: distinct arcs failed (then restored) per storm")

		scaleBench = flag.Bool("scale-bench", false, "measure arena-column vs pointer-table memory at increasing node counts instead of serving")
		scaleNodes = flag.String("scale-nodes", "1000,10000,100000", "scale-bench: comma-separated node counts")
		scaleDests = flag.Int("scale-dests", 8, "scale-bench: originated destinations per point")

		stormBench   = flag.Bool("storm-bench", false, "measure paged copy-on-write columns against flat arena columns on paired failure storms instead of serving")
		stormNodes   = flag.String("storm-nodes", "1000,10000,100000", "storm-bench: comma-separated ScaleFree node counts")
		stormArcsCSV = flag.String("storm-arcs", "4,32", "storm-bench: comma-separated storm widths (distinct arcs failed, then restored, per storm)")

		publishAddr     = flag.String("publish", "", "leader: serve the replication record stream to followers on this TCP address")
		logDir          = flag.String("log-dir", "", "leader: append every replication record to DIR/replica.log")
		logMaxBytes     = flag.Int64("log-max-bytes", 0, "leader: rotate DIR/replica.log to a numbered segment once it passes this many bytes, reseeding the live log with a fresh full snapshot (0: never)")
		follow          = flag.String("follow", "", "follower mode: subscribe to a leader at host:port, or replay a log with file:PATH")
		replayStorm     = flag.Int("replay-storm", 0, "leader: apply this many deterministic random arc toggles after boot (CI smoke / log seeding)")
		oneshot         = flag.Bool("oneshot", false, "print role, snapshot version and routing checksum, then exit instead of serving HTTP")
		replicaBench    = flag.Bool("replica-bench", false, "measure delta replication records against full snapshots on paired storms instead of serving")
		replicaStormArc = flag.Int("replica-storm-arcs", 4, "replica-bench: distinct arcs failed (then restored) per storm")
	)
	flag.Parse()
	if _, err := cliflag.ApplyEngine(*engine); err != nil {
		fatal(err)
	}
	policy, err := serve.ParseBackpressure(*backpressure)
	if err != nil {
		fatal(err)
	}

	if *telemetryBench {
		runTelemetryBench(*exprSrc, *scenFile, *randomN, *p, *seed, *dests, *workers, *benchQueries, *benchRounds, *out)
		return
	}
	if *queryBench {
		runQueryBench(*exprSrc, *scenFile, *randomN, *p, *seed, *dests, *workers, *queryBatchSize, *benchQueries, *benchRounds, *out)
		return
	}
	if *parallelBench {
		runParallelBench(*exprSrc, *scenFile, *randomN, *p, *seed, *dests, *workers, *stormEvents, *benchRounds, *out)
		return
	}
	if *deltaBench {
		runDeltaBench(*exprSrc, *scenFile, *randomN, *p, *seed, *dests, *workers, *deltaStormArcs, *benchRounds, *out)
		return
	}
	if *scaleBench {
		runScaleBench(*exprSrc, *scaleNodes, *seed, *scaleDests, *out)
		return
	}
	if *stormBench {
		runStormBench(*exprSrc, *stormNodes, *stormArcsCSV, *seed, *dests, *workers, *benchRounds, *out)
		return
	}
	if *replicaBench {
		runReplicaBench(*exprSrc, *scenFile, *randomN, *p, *seed, *dests, *workers, *replicaStormArc, *benchRounds, *out)
		return
	}
	if *follow != "" {
		runFollower(*follow, *addr, *oneshot)
		return
	}

	// The load generator keeps the historical uninstrumented
	// configuration so BENCH_serve.json stays comparable across PRs; the
	// serving path always carries its registry.
	opts := []serve.Option{
		serve.WithWorkers(*workers),
		serve.WithQueueCapacity(*queueCap),
		serve.WithBackpressure(policy),
		serve.WithRebuildTimeout(*rebuildTO),
	}
	var reg *telemetry.Registry
	if !*loadgen {
		reg = telemetry.NewRegistry()
		opts = append(opts,
			serve.WithRegistry(reg),
			serve.WithSlowQuery(time.Duration(*slowUS)*time.Microsecond),
		)
	}
	// Leader replication: the publisher must exist before serve.New (the
	// initial build already publishes a full record), but its bootstrap
	// source is the server — close the loop with a late-bound closure,
	// safe because no subscriber is accepted until Serve starts below.
	var pub *replica.Publisher
	var srv *serve.Server
	if *publishAddr != "" || *logDir != "" {
		var log *replica.Log
		if *logDir != "" {
			var err error
			if log, err = replica.OpenLog(*logDir); err != nil {
				fatal(err)
			}
		}
		pub = replica.NewPublisher(func() (uint64, []byte, error) { return srv.EncodeFull() }, log)
		pub.SetLogMaxBytes(*logMaxBytes)
		defer pub.Close()
		opts = append(opts, serve.WithReplication(pub))
	}
	srv, sc, err := buildServer(*exprSrc, *scenFile, *randomN, *p, *seed, *dests, opts...)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	if sc != nil && *replay {
		applied, err := srv.Replay(context.Background(), sc.SortedEvents())
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mrserve: replayed %d scenario events\n", applied)
	}
	if *replayStorm > 0 {
		if err := applyStorm(srv, *replayStorm, *seed); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mrserve: applied %d storm toggles\n", *replayStorm)
	}
	if *oneshot {
		fmt.Printf("mrserve: role=leader version=%d crc=%08x\n", srv.Snapshot().Version, srv.Checksum())
		return
	}
	if *publishAddr != "" {
		ln, err := net.Listen("tcp", *publishAddr)
		if err != nil {
			fatal(err)
		}
		go pub.Serve(ln) //nolint:errcheck
		fmt.Fprintf(os.Stderr, "mrserve: publishing replication records at %s\n", ln.Addr())
	}

	if *loadgen {
		runLoadgen(srv, serve.LoadOptions{
			Duration: *duration, Readers: *readers, EventEvery: *eventEvery, Seed: *seed,
		}, *out)
		return
	}

	var hopts []serve.HandlerOption
	if *legacyAPI {
		hopts = append(hopts, serve.WithLegacyAPI())
	}
	mux := serve.NewHandler(srv, reg, hopts...)
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "mrserve: serving %d destinations on %d nodes / %d arcs (engine %s, %d workers, queue %d/%s) at %s (pprof %v)\n",
		st.Destinations, st.Nodes, st.Arcs, st.Engine, st.Workers, st.QueueCapacity, st.Backpressure, *addr, *pprofOn)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fatal(err)
	}
}

// buildServer assembles the server from either a scenario file or the
// -expr/-random flags, originating the algebra's default weight at the
// chosen destinations.
func buildServer(exprSrc, scenFile string, randomN int, p float64, seed int64, destCount int, opts ...serve.Option) (*serve.Server, *scenario.Scenario, error) {
	if scenFile != "" {
		f, err := os.Open(scenFile)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		sc, err := scenario.Parse(f)
		if err != nil {
			return nil, nil, err
		}
		srv, err := serve.NewServer(serve.Config{},
			append([]serve.Option{serve.WithScenario(sc)}, opts...)...)
		return srv, sc, err
	}
	a, err := core.InferString(exprSrc)
	if err != nil {
		return nil, nil, err
	}
	r := rand.New(rand.NewSource(seed))
	labels := 4
	if a.OT.F.Finite() {
		labels = a.OT.F.Size()
	}
	g := graph.Random(r, randomN, p, graph.UniformLabels(labels))
	origin := a.OT.DefaultOrigin()
	if destCount <= 0 || destCount > g.N {
		destCount = g.N
	}
	origins := make(map[int]value.V, destCount)
	for i := 0; i < destCount; i++ {
		origins[i*g.N/destCount] = origin
	}
	srv, err := serve.NewServer(serve.Config{Engine: exec.For(a.OT, origin), Graph: g, Origins: origins},
		append([]serve.Option{serve.WithDeltaProps(a.Props)}, opts...)...)
	return srv, nil, err
}

// runLoadgen drives the load generator and writes the report.
func runLoadgen(srv *serve.Server, opts serve.LoadOptions, out string) {
	rep := serve.Load(srv, opts)
	writeReport(rep, out)
	if out != "" {
		fmt.Fprintf(os.Stderr, "mrserve: wrote %s (%.0f qps, p99 %.1fµs, incremental event %.0fµs vs full rebuild %.0fµs)\n",
			out, rep.QPS, rep.P99us, rep.IncrementalEventUS, rep.FullRebuildUS)
	}
}

// runTelemetryBench builds two identical servers — one bare, one with a
// registry — and writes the paired query-path overhead report.
// runQueryBench measures the batched binary query plane against the
// single-query JSON baseline on one live loopback listener and writes
// BENCH_query.json. The stderr line is the CI smoke's grep target.
func runQueryBench(exprSrc, scenFile string, randomN int, p float64, seed int64, destCount, workers, batch, queries, rounds int, out string) {
	srv, _, err := buildServer(exprSrc, scenFile, randomN, p, seed, destCount, serve.WithWorkers(workers))
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	rep, err := serve.QueryBench(srv, serve.QueryBenchOptions{
		Batch: batch, Queries: queries, Rounds: rounds, Seed: seed,
	})
	if err != nil {
		fatal(err)
	}
	writeReport(rep, out)
	fmt.Fprintf(os.Stderr,
		"mrserve: query-bench single %.0f qps (p99 %.2fµs) vs batch[%d] %.0f qps (p99 %.2fµs amortized): %.1fx speedup, differential-ok=%v\n",
		rep.SingleQPS, rep.SingleP99US, rep.BatchSize, rep.BatchQPS, rep.BatchP99US, rep.Speedup, rep.DifferentialOK)
}

func runTelemetryBench(exprSrc, scenFile string, randomN int, p float64, seed int64, destCount, workers, queries, rounds int, out string) {
	bare, _, err := buildServer(exprSrc, scenFile, randomN, p, seed, destCount, serve.WithWorkers(workers))
	if err != nil {
		fatal(err)
	}
	defer bare.Close()
	inst, _, err := buildServer(exprSrc, scenFile, randomN, p, seed, destCount,
		serve.WithWorkers(workers), serve.WithRegistry(telemetry.NewRegistry()))
	if err != nil {
		fatal(err)
	}
	defer inst.Close()
	rep := serve.MeasureOverhead(bare, inst, queries, rounds, seed)
	writeReport(rep, out)
	if out != "" {
		fmt.Fprintf(os.Stderr, "mrserve: wrote %s (bare %.0fns/op, instrumented %.0fns/op, overhead %.1f%%)\n",
			out, rep.BareNSPerOp, rep.InstrumentedNSPerOp, rep.OverheadPct)
	}
}

// runParallelBench measures the parallel batched rebuild pipeline
// against the serial per-event path on paired event storms and writes
// BENCH_parallel.json.
func runParallelBench(exprSrc, scenFile string, randomN int, p float64, seed int64, destCount, workers, stormEvents, rounds int, out string) {
	mk := func(w int) (*serve.Server, error) {
		srv, _, err := buildServer(exprSrc, scenFile, randomN, p, seed, destCount, serve.WithWorkers(w))
		return srv, err
	}
	rep, err := serve.MeasureParallel(mk, workers, stormEvents, rounds, seed)
	if err != nil {
		fatal(err)
	}
	writeReport(rep, out)
	if out != "" {
		fmt.Fprintf(os.Stderr, "mrserve: wrote %s (serial %.0fµs/storm, batched×%d-workers %.0fµs/storm, speedup %.1f×)\n",
			out, rep.SerialPerEventUS, rep.Workers, rep.BatchedWorkersUS, rep.SpeedupPipeline)
	}
}

// runDeltaBench measures warm-start delta reconvergence against
// from-scratch rebuilds on paired small-perturbation storms and writes
// BENCH_delta.json.
func runDeltaBench(exprSrc, scenFile string, randomN int, p float64, seed int64, destCount, workers, stormArcs, rounds int, out string) {
	mk := func(delta bool) (*serve.Server, error) {
		srv, _, err := buildServer(exprSrc, scenFile, randomN, p, seed, destCount,
			serve.WithWorkers(workers), serve.WithDelta(delta))
		return srv, err
	}
	rep, err := serve.MeasureDelta(mk, stormArcs, rounds, seed)
	if err != nil {
		fatal(err)
	}
	writeReport(rep, out)
	if out != "" {
		fmt.Fprintf(os.Stderr, "mrserve: wrote %s (scratch %.0fµs/batch, delta %.0fµs/batch, speedup %.1f×, mean frontier %.1f of %d nodes)\n",
			out, rep.ScratchBatchUS, rep.DeltaBatchUS, rep.SpeedupDelta, rep.MeanFrontier, rep.Nodes)
	}
}

// runScaleBench measures the arena-flat column store against the
// pointer-table baseline at each node count on a preferential-attachment
// topology (the closest stock generator to an AS graph) and writes
// BENCH_scale.json. A compiled engine is preferred so retained-heap
// readings stay free of intern-table noise; algebras with infinite
// carriers fall back to the pre-warmed dynamic backend.
func runScaleBench(exprSrc, nodeList string, seed int64, destCount int, out string) {
	a, err := core.InferString(exprSrc)
	if err != nil {
		fatal(err)
	}
	nodeCounts := parseIntList(nodeList, 2, "-scale-nodes")
	origin := a.OT.DefaultOrigin()
	eng := exec.For(a.OT, origin)
	labels := 4
	if a.OT.F.Finite() {
		labels = a.OT.F.Size()
	}
	mk := func(nodes int) (exec.Algebra, *graph.Graph, map[int]value.V, error) {
		g := graph.ScaleFree(rand.New(rand.NewSource(seed)), nodes, 2, graph.UniformLabels(labels))
		dc := destCount
		if dc <= 0 || dc > g.N {
			dc = g.N
		}
		origins := make(map[int]value.V, dc)
		for i := 0; i < dc; i++ {
			origins[i*g.N/dc] = origin
		}
		return eng, g, origins, nil
	}
	rep, err := serve.MeasureScale(mk, nodeCounts)
	if err != nil {
		fatal(err)
	}
	writeReport(rep, out)
	if out != "" {
		last := rep.Points[len(rep.Points)-1]
		fmt.Fprintf(os.Stderr, "mrserve: wrote %s (n=%d: %.1f B/entry arena vs %.1f B/entry pointer, %.1f× smaller, LPM differential ok=%v)\n",
			out, last.Nodes, last.ArenaBytesPerEntry, last.PointerBytesPerEntry, last.Ratio, last.LPMDifferentialOK)
	}
}

// parseIntList splits a comma-separated integer flag, enforcing a
// per-entry minimum.
func parseIntList(list string, min int, flagName string) []int {
	var out []int
	for _, part := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < min {
			fatal(fmt.Errorf("bad %s entry %q", flagName, part))
		}
		out = append(out, n)
	}
	return out
}

// stormSuite is the BENCH_storm.json shape: one paged-vs-flat swap
// measurement per (node count × storm width) pair.
type stormSuite struct {
	Expr   string               `json:"expr"`
	Seed   int64                `json:"seed"`
	Points []*serve.StormReport `json:"points"`
}

// runStormBench measures paged copy-on-write columns against the flat
// arena baseline on paired failure storms over preferential-attachment
// topologies at each node count × storm width, and writes
// BENCH_storm.json. The algebra must license the warm-start delta path
// (e.g. -expr 'lex(delay(32,3), hops(8))') — both servers run it, so
// the pairing isolates the snapshot data-plane copy cost. The stderr
// line per point is the CI smoke's grep target.
func runStormBench(exprSrc, nodeList, arcList string, seed int64, destCount, workers, rounds int, out string) {
	a, err := core.InferString(exprSrc)
	if err != nil {
		fatal(err)
	}
	nodeCounts := parseIntList(nodeList, 2, "-storm-nodes")
	arcCounts := parseIntList(arcList, 1, "-storm-arcs")
	origin := a.OT.DefaultOrigin()
	labels := 4
	if a.OT.F.Finite() {
		labels = a.OT.F.Size()
	}
	suite := &stormSuite{Expr: exprSrc, Seed: seed}
	for _, nodes := range nodeCounts {
		for _, stormArcs := range arcCounts {
			mk := func(paged bool) (*serve.Server, error) {
				g := graph.ScaleFree(rand.New(rand.NewSource(seed)), nodes, 2, graph.UniformLabels(labels))
				dc := destCount
				if dc <= 0 || dc > g.N {
					dc = g.N
				}
				origins := make(map[int]value.V, dc)
				for i := 0; i < dc; i++ {
					origins[i*g.N/dc] = origin
				}
				return serve.NewServer(serve.Config{Engine: exec.For(a.OT, origin), Graph: g, Origins: origins},
					serve.WithWorkers(workers), serve.WithDeltaProps(a.Props), serve.WithPagedColumns(paged))
			}
			rep, err := serve.MeasureStorm(mk, stormArcs, rounds, seed)
			if err != nil {
				fatal(err)
			}
			suite.Points = append(suite.Points, rep)
			fmt.Fprintf(os.Stderr,
				"mrserve: storm n=%d arcs=%d: flat %.0fµs/swap vs paged %.0fµs/swap (%.1fx speedup), cloned %.2f%% of pages, differential-ok=%v\n",
				rep.Nodes, rep.StormArcs, rep.FlatSwapUS, rep.PagedSwapUS, rep.SpeedupPaged,
				100*rep.ClonedFraction, rep.DifferentialOK)
		}
	}
	writeReport(suite, out)
}

// applyStorm replays n deterministic random toggles (each flips an
// arc's current state) as single-event batches, so a leader and the log
// it leaves behind hold a reproducible post-storm table for the CI
// leader/follower smoke.
func applyStorm(srv *serve.Server, n int, seed int64) error {
	r := rand.New(rand.NewSource(seed + 1))
	st := srv.Stats()
	disabled := make([]bool, st.Arcs)
	for i := 0; i < n; i++ {
		arc := r.Intn(len(disabled))
		if _, _, err := srv.ApplyEvent(context.Background(), arc, !disabled[arc]); err != nil {
			return err
		}
		disabled[arc] = !disabled[arc]
	}
	return nil
}

// runFollower boots read-replica mode: bootstrap from a leader's event
// log (file:PATH) or subscribe to a live leader (host:port), then serve
// the follower read API — or, with oneshot, print the applied version
// and checksum for the CI smoke and exit.
func runFollower(target, addr string, oneshot bool) {
	reg := telemetry.NewRegistry()
	fol := serve.NewFollower(reg)
	if path, ok := strings.CutPrefix(target, "file:"); ok {
		if err := replica.ReplayLog(path, fol.Apply); err != nil {
			fatal(err)
		}
		if oneshot {
			fmt.Printf("mrserve: role=follower version=%d crc=%08x\n", fol.Version(), fol.Checksum())
			return
		}
	} else {
		if oneshot {
			fatal(fmt.Errorf("-oneshot follower needs a file: target (a live subscription never finishes)"))
		}
		go func() {
			err := replica.Subscribe(context.Background(), target, fol.Version, fol.Apply)
			fatal(fmt.Errorf("subscription ended: %w", err))
		}()
	}
	mux := serve.NewFollowerHandler(fol, reg)
	fmt.Fprintf(os.Stderr, "mrserve: follower of %s at %s (v%d)\n", target, addr, fol.Version())
	if err := http.ListenAndServe(addr, mux); err != nil {
		fatal(err)
	}
}

// runReplicaBench measures delta replication records against full
// snapshots on paired storms and writes BENCH_replica.json.
func runReplicaBench(exprSrc, scenFile string, randomN int, p float64, seed int64, destCount, workers, stormArcs, rounds int, out string) {
	mk := func(sink serve.RecordSink) (*serve.Server, error) {
		srv, _, err := buildServer(exprSrc, scenFile, randomN, p, seed, destCount,
			serve.WithWorkers(workers), serve.WithReplication(sink))
		return srv, err
	}
	rep, err := serve.MeasureReplica(mk, stormArcs, rounds, seed)
	if err != nil {
		fatal(err)
	}
	writeReport(rep, out)
	if out != "" {
		fmt.Fprintf(os.Stderr, "mrserve: wrote %s (full %.0fB vs delta %.0fB per record, %.1f× smaller; apply %.0fµs vs solve %.0fµs, %.1f×)\n",
			out, rep.BytesFullPerRecord, rep.BytesDeltaPerRecord, rep.FullToDeltaRatio,
			rep.FollowerApplyUS, rep.LeaderBatchUS, rep.ApplySpeedup)
	}
}

// writeReport marshals v to out (” = stdout).
func writeReport(v any, out string) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrserve:", err)
	os.Exit(1)
}
