// Command mrserve runs the concurrent route-query service: it compiles
// an algebra expression, builds (or loads) a topology, computes snapshot
// route tables with a worker pool and serves them over HTTP/JSON while
// absorbing topology events with incremental reconvergence.
//
// Usage:
//
//	mrserve -expr 'lex(delay(32,3), bw(8))' -random 64 -dests 8
//	mrserve -scenario drills/failover.mr -replay
//	mrserve -expr 'delay(64,4)' -random 48 -loadgen -out BENCH_serve.json
//
// Endpoints:
//
//	GET /route?from=U&dest=D   one node's route (weight, ECMP set, path)
//	GET /paths?dest=D          every node's forwarding path toward D
//	GET /event?arc=A&kind=fail inject a link failure (kind=up recovers;
//	                           from=&to= names the arc by endpoints)
//	GET /stats                 counters: queries, swaps, events,
//	                           incremental vs full recomputes
//
// -loadgen skips HTTP and drives the server in-process with a
// concurrent query + event mix, writing throughput/latency percentiles
// and the incremental-vs-full event cost to -out (BENCH_serve.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"time"

	"metarouting/internal/cliflag"
	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/scenario"
	"metarouting/internal/serve"
	"metarouting/internal/value"
)

func main() {
	var (
		exprSrc  = flag.String("expr", "lex(delay(32,3), bw(8))", "metarouting expression to serve routes for")
		scenFile = flag.String("scenario", "", "boot from a scenario file (expr + topology + events) instead of -expr/-random")
		replay   = flag.Bool("replay", false, "with -scenario: replay its events into the live server before serving")
		randomN  = flag.Int("random", 48, "random GNP topology node count")
		p        = flag.Float64("p", 0.1, "random topology arc probability")
		seed     = flag.Int64("seed", 1, "random seed")
		dests    = flag.Int("dests", 8, "number of originated destinations (spread over the nodes; ≤0 = every node)")
		workers  = flag.Int("workers", 0, "snapshot builder worker pool size (≤0: 4)")
		addr     = flag.String("addr", ":8348", "HTTP listen address")
		engine   = cliflag.Engine(nil)

		loadgen    = flag.Bool("loadgen", false, "run the in-process load generator instead of serving HTTP")
		duration   = flag.Duration("duration", 2*time.Second, "loadgen query phase length")
		readers    = flag.Int("readers", 4, "loadgen concurrent reader goroutines")
		eventEvery = flag.Duration("event-every", 20*time.Millisecond, "loadgen topology event period (0 disables)")
		out        = flag.String("out", "", "loadgen: write the JSON report here ('' = stdout)")
	)
	flag.Parse()
	if _, err := cliflag.ApplyEngine(*engine); err != nil {
		fatal(err)
	}

	srv, sc, err := buildServer(*exprSrc, *scenFile, *randomN, *p, *seed, *dests, *workers)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	if sc != nil && *replay {
		applied, err := srv.Replay(sc.SortedEvents())
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mrserve: replayed %d scenario events\n", applied)
	}

	if *loadgen {
		runLoadgen(srv, serve.LoadOptions{
			Duration: *duration, Readers: *readers, EventEvery: *eventEvery, Seed: *seed,
		}, *out)
		return
	}

	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "mrserve: serving %d destinations on %d nodes / %d arcs (engine %s, %d workers) at %s\n",
		st.Destinations, st.Nodes, st.Arcs, st.Engine, st.Workers, *addr)
	if err := http.ListenAndServe(*addr, handler(srv)); err != nil {
		fatal(err)
	}
}

// buildServer assembles the server from either a scenario file or the
// -expr/-random flags, originating the algebra's default weight at the
// chosen destinations.
func buildServer(exprSrc, scenFile string, randomN int, p float64, seed int64, destCount, workers int) (*serve.Server, *scenario.Scenario, error) {
	if scenFile != "" {
		f, err := os.Open(scenFile)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		sc, err := scenario.Parse(f)
		if err != nil {
			return nil, nil, err
		}
		srv, err := serve.NewFromScenario(sc, serve.Options{Workers: workers})
		return srv, sc, err
	}
	a, err := core.InferString(exprSrc)
	if err != nil {
		return nil, nil, err
	}
	r := rand.New(rand.NewSource(seed))
	labels := 4
	if a.OT.F.Finite() {
		labels = a.OT.F.Size()
	}
	g := graph.Random(r, randomN, p, graph.UniformLabels(labels))
	origin := a.OT.DefaultOrigin()
	if destCount <= 0 || destCount > g.N {
		destCount = g.N
	}
	origins := make(map[int]value.V, destCount)
	for i := 0; i < destCount; i++ {
		origins[i*g.N/destCount] = origin
	}
	srv, err := serve.New(exec.For(a.OT, origin), g, origins, serve.Options{Workers: workers})
	return srv, nil, err
}

// runLoadgen drives the load generator and writes the report.
func runLoadgen(srv *serve.Server, opts serve.LoadOptions, out string) {
	rep := serve.Load(srv, opts)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mrserve: wrote %s (%.0f qps, p99 %.1fµs, incremental event %.0fµs vs full rebuild %.0fµs)\n",
		out, rep.QPS, rep.P99us, rep.IncrementalEventUS, rep.FullRebuildUS)
}

// routeReply is the /route response shape.
type routeReply struct {
	From    int    `json:"from"`
	Dest    int    `json:"dest"`
	Routed  bool   `json:"routed"`
	Weight  string `json:"weight,omitempty"`
	ECMP    []int  `json:"ecmp,omitempty"`
	Path    []int  `json:"path,omitempty"`
	Version uint64 `json:"snapshot_version"`
	Err     string `json:"error,omitempty"`
}

func handler(srv *serve.Server) http.Handler {
	mux := http.NewServeMux()
	intArg := func(req *http.Request, key string) (int, error) {
		v, err := strconv.Atoi(req.URL.Query().Get(key))
		if err != nil {
			return 0, fmt.Errorf("bad or missing %q parameter", key)
		}
		return v, nil
	}
	writeJSON := func(w http.ResponseWriter, status int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(v) //nolint:errcheck
	}

	mux.HandleFunc("/route", func(w http.ResponseWriter, req *http.Request) {
		from, err1 := intArg(req, "from")
		dest, err2 := intArg(req, "dest")
		if err1 != nil || err2 != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "want /route?from=U&dest=D"})
			return
		}
		sn := srv.Snapshot()
		reply := routeReply{From: from, Dest: dest, Version: sn.Version}
		if e := srv.Lookup(from, dest); e != nil {
			reply.Routed = true
			reply.Weight = value.Format(e.Weight)
			reply.ECMP = e.NextHops
			if path, err := sn.Forward(from, dest); err == nil {
				reply.Path = path
			} else {
				reply.Err = err.Error()
			}
		}
		writeJSON(w, http.StatusOK, reply)
	})

	mux.HandleFunc("/paths", func(w http.ResponseWriter, req *http.Request) {
		dest, err := intArg(req, "dest")
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "want /paths?dest=D"})
			return
		}
		sn := srv.Snapshot()
		type nodePath struct {
			Node int    `json:"node"`
			Path []int  `json:"path,omitempty"`
			Err  string `json:"error,omitempty"`
		}
		var out []nodePath
		for u := 0; u < sn.Graph.N; u++ {
			np := nodePath{Node: u}
			if path, err := sn.Forward(u, dest); err == nil {
				np.Path = path
			} else {
				np.Err = err.Error()
			}
			out = append(out, np)
		}
		writeJSON(w, http.StatusOK, map[string]any{"dest": dest, "version": sn.Version, "paths": out})
	})

	mux.HandleFunc("/event", func(w http.ResponseWriter, req *http.Request) {
		kind := req.URL.Query().Get("kind")
		if kind != "fail" && kind != "up" {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "want kind=fail or kind=up"})
			return
		}
		fail := kind == "fail"
		var applied bool
		var recomputed int
		var err error
		if req.URL.Query().Get("arc") != "" {
			var arc int
			if arc, err = intArg(req, "arc"); err == nil {
				applied, recomputed, err = srv.ApplyEvent(arc, fail)
			}
		} else {
			from, err1 := intArg(req, "from")
			to, err2 := intArg(req, "to")
			if err1 != nil || err2 != nil {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": "want arc=A or from=U&to=V"})
				return
			}
			applied, recomputed, err = srv.ApplyEventEndpoints(from, to, fail)
		}
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"applied": applied, "recomputed_dests": recomputed,
			"version": srv.Snapshot().Version,
		})
	})

	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, srv.Stats())
	})
	return mux
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrserve:", err)
	os.Exit(1)
}
