// Command mrserve runs the concurrent route-query service: it compiles
// an algebra expression, builds (or loads) a topology, computes snapshot
// route tables with a worker pool and serves them over HTTP/JSON while
// absorbing topology events with incremental reconvergence.
//
// Usage:
//
//	mrserve -expr 'lex(delay(32,3), bw(8))' -random 64 -dests 8
//	mrserve -scenario drills/failover.mr -replay
//	mrserve -expr 'delay(64,4)' -random 48 -loadgen -out BENCH_serve.json
//	mrserve -telemetry-bench -out BENCH_telemetry.json
//
// Endpoints:
//
//	GET /route?from=U&dest=D   one node's route (weight, ECMP set, path)
//	GET /paths?dest=D          every node's forwarding path toward D
//	GET /event?arc=A&kind=fail inject a link failure (kind=up recovers;
//	                           from=&to= names the arc by endpoints;
//	                           POST with a JSON body works too)
//	GET /stats                 counters: queries, swaps, events,
//	                           incremental vs full recomputes
//	GET /metrics               Prometheus text format: query latency
//	                           histogram, convergence gauges, solver
//	                           stage counters
//	GET /slowlog               recent queries over the slow threshold
//	GET /debug/pprof/          CPU/heap/goroutine profiles (with -pprof)
//
// -loadgen skips HTTP and drives the server in-process with a
// concurrent query + event mix, writing throughput/latency percentiles
// and the incremental-vs-full event cost to -out (BENCH_serve.json).
// -telemetry-bench measures the telemetry overhead on the query path
// (paired instrumented vs bare servers) and writes BENCH_telemetry.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"metarouting/internal/cliflag"
	"metarouting/internal/core"
	"metarouting/internal/exec"
	"metarouting/internal/graph"
	"metarouting/internal/scenario"
	"metarouting/internal/serve"
	"metarouting/internal/telemetry"
	"metarouting/internal/value"
)

func main() {
	var (
		exprSrc  = flag.String("expr", "lex(delay(32,3), bw(8))", "metarouting expression to serve routes for")
		scenFile = flag.String("scenario", "", "boot from a scenario file (expr + topology + events) instead of -expr/-random")
		replay   = flag.Bool("replay", false, "with -scenario: replay its events into the live server before serving")
		randomN  = flag.Int("random", 48, "random GNP topology node count")
		p        = flag.Float64("p", 0.1, "random topology arc probability")
		seed     = flag.Int64("seed", 1, "random seed")
		dests    = flag.Int("dests", 8, "number of originated destinations (spread over the nodes; ≤0 = every node)")
		workers  = flag.Int("workers", 0, "snapshot builder worker pool size (≤0: 4)")
		addr     = flag.String("addr", ":8348", "HTTP listen address")
		pprofOn  = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		slowUS   = flag.Int64("slow-query-us", 1000, "slow-query log threshold in microseconds")
		engine   = cliflag.Engine(nil)

		loadgen    = flag.Bool("loadgen", false, "run the in-process load generator instead of serving HTTP")
		duration   = flag.Duration("duration", 2*time.Second, "loadgen query phase length")
		readers    = flag.Int("readers", 4, "loadgen concurrent reader goroutines")
		eventEvery = flag.Duration("event-every", 20*time.Millisecond, "loadgen topology event period (0 disables)")
		out        = flag.String("out", "", "loadgen/telemetry-bench: write the JSON report here ('' = stdout)")

		telemetryBench = flag.Bool("telemetry-bench", false, "measure telemetry overhead on the query path (paired instrumented vs bare) instead of serving")
		benchQueries   = flag.Int("bench-queries", 50000, "telemetry-bench: Forward queries per round per side")
		benchRounds    = flag.Int("bench-rounds", 5, "telemetry-bench: measured rounds per side")
	)
	flag.Parse()
	if _, err := cliflag.ApplyEngine(*engine); err != nil {
		fatal(err)
	}

	if *telemetryBench {
		runTelemetryBench(*exprSrc, *scenFile, *randomN, *p, *seed, *dests, *workers, *benchQueries, *benchRounds, *out)
		return
	}

	// The load generator keeps the historical uninstrumented
	// configuration so BENCH_serve.json stays comparable across PRs; the
	// serving path always carries its registry.
	var reg *telemetry.Registry
	if !*loadgen {
		reg = telemetry.NewRegistry()
	}
	srv, sc, err := buildServer(*exprSrc, *scenFile, *randomN, *p, *seed, *dests, serve.Options{
		Workers: *workers, Telemetry: reg, SlowQueryNS: *slowUS * 1000,
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	if sc != nil && *replay {
		applied, err := srv.Replay(sc.SortedEvents())
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mrserve: replayed %d scenario events\n", applied)
	}

	if *loadgen {
		runLoadgen(srv, serve.LoadOptions{
			Duration: *duration, Readers: *readers, EventEvery: *eventEvery, Seed: *seed,
		}, *out)
		return
	}

	mux := serve.NewHandler(srv, reg)
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "mrserve: serving %d destinations on %d nodes / %d arcs (engine %s, %d workers) at %s (pprof %v)\n",
		st.Destinations, st.Nodes, st.Arcs, st.Engine, st.Workers, *addr, *pprofOn)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fatal(err)
	}
}

// buildServer assembles the server from either a scenario file or the
// -expr/-random flags, originating the algebra's default weight at the
// chosen destinations.
func buildServer(exprSrc, scenFile string, randomN int, p float64, seed int64, destCount int, opts serve.Options) (*serve.Server, *scenario.Scenario, error) {
	if scenFile != "" {
		f, err := os.Open(scenFile)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		sc, err := scenario.Parse(f)
		if err != nil {
			return nil, nil, err
		}
		srv, err := serve.NewFromScenario(sc, opts)
		return srv, sc, err
	}
	a, err := core.InferString(exprSrc)
	if err != nil {
		return nil, nil, err
	}
	r := rand.New(rand.NewSource(seed))
	labels := 4
	if a.OT.F.Finite() {
		labels = a.OT.F.Size()
	}
	g := graph.Random(r, randomN, p, graph.UniformLabels(labels))
	origin := a.OT.DefaultOrigin()
	if destCount <= 0 || destCount > g.N {
		destCount = g.N
	}
	origins := make(map[int]value.V, destCount)
	for i := 0; i < destCount; i++ {
		origins[i*g.N/destCount] = origin
	}
	srv, err := serve.New(exec.For(a.OT, origin), g, origins, opts)
	return srv, nil, err
}

// runLoadgen drives the load generator and writes the report.
func runLoadgen(srv *serve.Server, opts serve.LoadOptions, out string) {
	rep := serve.Load(srv, opts)
	writeReport(rep, out)
	if out != "" {
		fmt.Fprintf(os.Stderr, "mrserve: wrote %s (%.0f qps, p99 %.1fµs, incremental event %.0fµs vs full rebuild %.0fµs)\n",
			out, rep.QPS, rep.P99us, rep.IncrementalEventUS, rep.FullRebuildUS)
	}
}

// runTelemetryBench builds two identical servers — one bare, one with a
// registry — and writes the paired query-path overhead report.
func runTelemetryBench(exprSrc, scenFile string, randomN int, p float64, seed int64, destCount, workers, queries, rounds int, out string) {
	bare, _, err := buildServer(exprSrc, scenFile, randomN, p, seed, destCount, serve.Options{Workers: workers})
	if err != nil {
		fatal(err)
	}
	defer bare.Close()
	inst, _, err := buildServer(exprSrc, scenFile, randomN, p, seed, destCount, serve.Options{
		Workers: workers, Telemetry: telemetry.NewRegistry(),
	})
	if err != nil {
		fatal(err)
	}
	defer inst.Close()
	rep := serve.MeasureOverhead(bare, inst, queries, rounds, seed)
	writeReport(rep, out)
	if out != "" {
		fmt.Fprintf(os.Stderr, "mrserve: wrote %s (bare %.0fns/op, instrumented %.0fns/op, overhead %.1f%%)\n",
			out, rep.BareNSPerOp, rep.InstrumentedNSPerOp, rep.OverheadPct)
	}
}

// writeReport marshals v to out ('' = stdout).
func writeReport(v any, out string) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrserve:", err)
	os.Exit(1)
}
