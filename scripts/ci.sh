#!/usr/bin/env sh
# CI entry point: build, vet, race-test. Run from the repository root.
set -eux

go build ./...
go vet ./...

# staticcheck when available (CI installs a pinned version; local runs
# without it are still valid).
if command -v staticcheck >/dev/null 2>&1; then
  staticcheck ./...
fi

go test -race ./...

# The serve subsystem is the concurrency-heavy code path: exercise its
# tests again under the race detector with shuffled execution order.
go test -race -count=2 -shuffle=on ./internal/serve/

# Bench smoke: every benchmark must still compile and survive one
# iteration (no timing assertions — this only guards against bit-rot).
go test -bench=. -benchtime=1x -run='^$' ./...

# Telemetry-overhead bench smoke: the paired instrumented-vs-bare
# measurement must run end to end and emit a well-formed report. Small
# sizes keep it fast; the committed BENCH_telemetry.json holds the real
# numbers.
go run ./cmd/mrserve -telemetry-bench -random 24 -dests 4 \
  -bench-queries 2000 -bench-rounds 2 -out /tmp/bench_telemetry_smoke.json
grep -q overhead_pct /tmp/bench_telemetry_smoke.json

# Parallel-rebuild bench smoke: the serial-vs-batched storm measurement
# must run end to end and emit a well-formed report. The committed
# BENCH_parallel.json holds the real numbers.
go run ./cmd/mrserve -parallel-bench -random 24 -dests 4 \
  -storm-events 8 -bench-rounds 2 -out /tmp/bench_parallel_smoke.json
grep -q speedup_pipeline /tmp/bench_parallel_smoke.json

# Delta-reconvergence bench smoke: the warm-start-vs-scratch storm
# measurement must run end to end on a delta-licensed algebra and emit a
# well-formed report. The committed BENCH_delta.json holds the real
# numbers.
go run ./cmd/mrserve -delta-bench -expr 'lex(delay(32,3), hops(8))' \
  -random 24 -dests 4 -delta-storm-arcs 2 -bench-rounds 2 \
  -out /tmp/bench_delta_smoke.json
grep -q speedup_delta /tmp/bench_delta_smoke.json

# Scale bench smoke: the arena-vs-pointer memory measurement must run
# end to end at 1k nodes, pass its built-in LPM differential, and emit
# a well-formed report. The committed BENCH_scale.json holds the real
# 1k/10k/100k numbers.
go run ./cmd/mrserve -scale-bench -scale-nodes 1000 -out /tmp/bench_scale_smoke.json
grep -q pointer_to_arena_ratio /tmp/bench_scale_smoke.json
grep -q '"lpm_differential_ok": true' /tmp/bench_scale_smoke.json

# Replication bench smoke: the delta-record-vs-full-snapshot
# measurement must run end to end, keep the follower checksum-identical
# to the leader, and emit a well-formed report. The committed
# BENCH_replica.json holds the real numbers.
go run ./cmd/mrserve -replica-bench -expr 'lex(delay(32,3), bw(8))' \
  -random 24 -dests 4 -replica-storm-arcs 2 -bench-rounds 2 \
  -out /tmp/bench_replica_smoke.json
grep -q full_to_delta_ratio /tmp/bench_replica_smoke.json
grep -q '"checksum_ok": true' /tmp/bench_replica_smoke.json

# Storm bench smoke: the paged-vs-flat copy-on-write swap measurement
# must run end to end at small scale, pass every per-swap bit-identity
# differential, and emit a well-formed report. The committed
# BENCH_storm.json holds the real 1k/10k/100k numbers.
go run ./cmd/mrserve -storm-bench -expr 'lex(delay(32,3), hops(8))' \
  -storm-nodes 256 -storm-arcs 2,8 -dests 4 -bench-rounds 2 \
  -out /tmp/bench_storm_smoke.json 2>&1 | tee /tmp/storm_smoke.txt
grep -q 'x speedup' /tmp/storm_smoke.txt
grep -q 'differential-ok=true' /tmp/storm_smoke.txt
grep -q speedup_paged /tmp/bench_storm_smoke.json
grep -q '"differential_ok": true' /tmp/bench_storm_smoke.json

# Leader/follower replication smoke: a leader boots, absorbs a
# deterministic storm and rotation-logs every record; a follower
# bootstrapped from nothing but the live log — which rotation reseeds
# with a full snapshot — and another replaying the whole segment
# directory must both report the identical snapshot version and
# routing checksum.
REPL_DIR=$(mktemp -d)
go run ./cmd/mrserve -expr 'lex(delay(32,3), hops(8))' -random 24 -dests 4 \
  -log-dir "$REPL_DIR" -log-max-bytes 4096 -replay-storm 50 -oneshot | tee /tmp/replica_leader.txt
ls "$REPL_DIR"/replica-*.log  # rotation must actually have produced segments
go run ./cmd/mrserve -follow "file:$REPL_DIR/replica.log" -oneshot | tee /tmp/replica_follower.txt
go run ./cmd/mrserve -follow "file:$REPL_DIR" -oneshot | tee /tmp/replica_follower_dir.txt
LEADER_STATE=$(sed 's/role=leader//' /tmp/replica_leader.txt)
FOLLOWER_STATE=$(sed 's/role=follower//' /tmp/replica_follower.txt)
FOLLOWER_DIR_STATE=$(sed 's/role=follower//' /tmp/replica_follower_dir.txt)
test -n "$LEADER_STATE" && test "$LEADER_STATE" = "$FOLLOWER_STATE"
test "$LEADER_STATE" = "$FOLLOWER_DIR_STATE"
rm -rf "$REPL_DIR"

# Query-plane bench smoke: the paired single-JSON-vs-batched-binary
# measurement must run end to end over live loopback HTTP, pass its
# built-in differential (JSON batch elements byte-identical to single
# replies, binary answers carrying the same facts), and emit a
# well-formed report. The committed BENCH_query.json holds the real
# numbers.
go run ./cmd/mrserve -query-bench -random 24 -dests 4 \
  -bench-queries 1024 -bench-rounds 2 -batch-size 64 \
  -out /tmp/bench_query_smoke.json
grep -q speedup /tmp/bench_query_smoke.json
grep -q '"differential_ok": true' /tmp/bench_query_smoke.json

# Allocs/op guards: the arena column build must stay allocation-flat,
# and both delta rebuild paths (flat epoch-bitmap and paged
# copy-on-write) must hold their steady-state allocation budgets.
go test -run='^(TestColumnBuildAllocs|TestDeltaColumnAllocs|TestDeltaPagedAllocs)$' \
  -count=1 ./internal/rib/

# Zero-alloc query-plane guards, under the race detector: the binary
# batch resolution core and the wire codec must stay at zero
# allocations with warm scratch.
go test -race -run='^(TestResolveWireBatchAllocs|TestCodecAllocs)$' -count=1 \
  ./internal/serve/ ./internal/serve/wire/

# Fuzz smoke: a short live session per target so the fuzz harnesses
# cannot bit-rot (go test accepts one -fuzz target per invocation; the
# patterns are anchored because the v1 targets share prefixes).
go test -run='^$' -fuzz='^FuzzRouteHandler$' -fuzztime=10s ./internal/serve/
go test -run='^$' -fuzz='^FuzzEventHandler$' -fuzztime=10s ./internal/serve/
go test -run='^$' -fuzz='^FuzzRouteHandlerV1$' -fuzztime=10s ./internal/serve/
go test -run='^$' -fuzz='^FuzzEventsHandlerV1$' -fuzztime=10s ./internal/serve/
go test -run='^$' -fuzz='^FuzzDecodeRecord$' -fuzztime=10s ./internal/replica/
go test -run='^$' -fuzz='^FuzzQueryWire$' -fuzztime=10s ./internal/serve/wire/

# Simulator bench smoke: the serial-vs-parallel measurement must run end
# to end at a small size and the parallel Outcome must stay bit-identical
# to the serial oracle. The committed BENCH_sim.json holds the real
# 64/1k/10k numbers.
go run ./cmd/mrexp -sim-bench -sim-nodes 64 -sim-workers 2 \
  -out /tmp/bench_sim_smoke.json
grep -q '"identical": true' /tmp/bench_sim_smoke.json
grep -q parallel_msgs_per_sec /tmp/bench_sim_smoke.json

# Convergence-corpus smoke: every strictly-increasing scenario must
# quiesce within the Daggitt-Griffin round budget and every gadget
# scenario must be flagged oscillating; mrexp exits nonzero on any
# theory violation.
go run ./cmd/mrexp -corpus -sim-workers 2 | tee /tmp/corpus_smoke.txt
grep -q '0 theory violations' /tmp/corpus_smoke.txt

go test -run='^$' -fuzz='^FuzzScenarioParse$' -fuzztime=10s ./internal/scenario/
