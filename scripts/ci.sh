#!/usr/bin/env sh
# CI entry point: build, vet, race-test. Run from the repository root.
set -eux

go build ./...
go vet ./...
go test -race ./...

# The serve subsystem is the concurrency-heavy code path: exercise its
# tests again under the race detector with shuffled execution order.
go test -race -count=2 -shuffle=on ./internal/serve/

# Bench smoke: every benchmark must still compile and survive one
# iteration (no timing assertions — this only guards against bit-rot).
go test -bench=. -benchtime=1x -run='^$' ./...
