#!/usr/bin/env sh
# Load-generator entry point: build mrserve and drive the route-query
# service with a concurrent query + event mix, recording throughput,
# latency percentiles and the incremental-vs-full reconvergence cost to
# BENCH_serve.json. Run from the repository root.
#
# Usage: scripts/loadgen.sh [extra mrserve flags...]
# e.g.:  scripts/loadgen.sh -duration 10s -readers 8 -engine dynamic
set -eux

go build -o "${TMPDIR:-/tmp}/mrserve" ./cmd/mrserve

"${TMPDIR:-/tmp}/mrserve" \
	-expr 'lex(delay(32,3), bw(8))' \
	-random 96 -p 0.035 -seed 1 -dests 12 -workers 4 \
	-loadgen -duration 5s -readers 4 -event-every 10ms \
	-out BENCH_serve.json \
	"$@"
