// Package metarouting is a Go implementation of Metarouting (Griffin &
// Sobrinho, SIGCOMM 2005) with the exact lexicographic-product property
// theory of Gurney & Griffin's "Lexicographic products in metarouting":
// a declarative language for constructing routing algebras whose
// algorithmic properties — monotonicity M (global optima), increasing I
// (path-vector convergence to local optima), and friends — are derived
// automatically from the expression structure, the way types are derived
// in a programming language.
//
// The core workflow:
//
//	a, err := metarouting.InferString("scoped(bw(4), delay(64,4))")
//	// a.Props now holds machine-derived judgements with provenance:
//	fmt.Println(a.Report())
//	if a.SupportsGlobalOptima() {
//	    res := metarouting.BellmanFord(a.OT, g, 0, origin, 0)
//	    ...
//	}
//
// The language has base algebras (delay, hops, bw, rel, lp, origin, tags,
// gadget, unit — see BaseNames) and the operators of the paper:
// lex (lexicographic product, n-ary), scoped (BGP-like ⊙), delta
// (OSPF-area-like Δ), union (+), left, right, and addtop.
//
// Underneath sits the full quadrants model of algebraic routing
// (bisemigroups, order semigroups, semigroup transforms, order
// transforms) with the translations between them, solvers (generalized
// Dijkstra, Bellman–Ford fixpoint, algebraic/min-set fixpoints, brute
// force), and an event-driven asynchronous path-vector simulator. Those
// layers live in internal/ packages and are exercised by the examples
// and the experiment suite (cmd/mrexp, EXPERIMENTS.md).
package metarouting

import (
	"io"
	"math/rand"

	"metarouting/internal/core"
	"metarouting/internal/expt"
	"metarouting/internal/graph"
	"metarouting/internal/ost"
	"metarouting/internal/prop"
	"metarouting/internal/protocol"
	"metarouting/internal/rib"
	"metarouting/internal/router"
	"metarouting/internal/scenario"
	"metarouting/internal/solve"
	"metarouting/internal/value"
)

// Algebra is an evaluated metarouting expression: the constructed routing
// algebra plus its inferred property set with provenance.
type Algebra = core.Algebra

// Expr is a node of the metarouting language AST; build with Parse or the
// constructors in this package.
type Expr = core.Expr

// Options configures property inference; see DefaultOptions.
type Options = core.Options

// OrderTransform is the runnable routing algebra (S, ≲, F) produced by
// inference — a Sobrinho structure.
type OrderTransform = ost.OrderTransform

// PropertySet holds property judgements keyed by prop.ID.
type PropertySet = prop.Set

// V is a dynamic weight value; pairs of weights are value.Pair.
type V = value.V

// Pair is a product weight (lexicographic and scoped products).
type Pair = value.Pair

// Graph is a directed network whose arcs carry algebra function labels.
type Graph = graph.Graph

// Arc is a labelled directed edge.
type Arc = graph.Arc

// Result is a single-destination routing solution.
type Result = solve.Result

// SimOutcome is the outcome of an asynchronous protocol run.
type SimOutcome = protocol.Outcome

// SimConfig parameterizes an asynchronous protocol run.
type SimConfig = protocol.Config

// Parse parses a metarouting-language expression such as
// "scoped(lp(4), lex(hops(16), bw(8)))".
func Parse(src string) (Expr, error) { return core.Parse(src) }

// MustParse is Parse but panics on error.
func MustParse(src string) Expr { return core.MustParse(src) }

// Infer evaluates an expression with default options (rule-based
// derivation plus model-check fallback on finite structures).
func Infer(e Expr) (*Algebra, error) { return core.Infer(e) }

// InferString parses and evaluates a source expression.
func InferString(src string) (*Algebra, error) { return core.InferString(src) }

// InferWith evaluates an expression with explicit options.
func InferWith(e Expr, opt Options) (*Algebra, error) { return core.InferWith(e, opt) }

// DefaultOptions returns the default inference options.
func DefaultOptions() Options { return core.DefaultOptions() }

// BaseNames lists the registered base algebras.
func BaseNames() []string { return core.BaseNames() }

// NewGraph builds a network graph from labelled arcs.
func NewGraph(n int, arcs []Arc) (*Graph, error) { return graph.New(n, arcs) }

// RandomGraph generates a random digraph in which every node can reach
// node 0; arc labels are drawn uniformly from [0, nLabels).
func RandomGraph(r *rand.Rand, n int, p float64, nLabels int) *Graph {
	return graph.Random(r, n, p, graph.UniformLabels(nLabels))
}

// Dijkstra computes routes to dest with the generalized Dijkstra
// algorithm — correct for algebras with M ∧ ND over a total preorder
// (see Algebra.SupportsDijkstra).
func Dijkstra(a *OrderTransform, g *Graph, dest int, origin V) *Result {
	return solve.Dijkstra(a, g, dest, origin)
}

// BellmanFord runs the synchronous fixpoint iteration — converges to the
// walk-optimal solution for monotone algebras and to a local optimum for
// increasing ones. maxRounds ≤ 0 picks a default budget.
func BellmanFord(a *OrderTransform, g *Graph, dest int, origin V, maxRounds int) *Result {
	return solve.BellmanFord(a, g, dest, origin, maxRounds)
}

// VerifyGlobal checks a solution against brute-force simple-path optima.
func VerifyGlobal(a *OrderTransform, g *Graph, dest int, origin V, res *Result) (bool, string) {
	return solve.VerifyGlobal(a, g, dest, origin, res)
}

// VerifyLocal checks that a solution is stable (locally optimal).
func VerifyLocal(a *OrderTransform, g *Graph, dest int, origin V, res *Result) (bool, string) {
	return solve.VerifyLocal(a, g, dest, origin, res)
}

// Simulate runs the event-driven asynchronous path-vector protocol.
func Simulate(a *OrderTransform, g *Graph, cfg SimConfig) *SimOutcome {
	return protocol.Run(a, g, cfg)
}

// Experiments runs the full paper-reproduction suite (E1–E18) with the
// given seed and returns rendered tables; see EXPERIMENTS.md.
func Experiments(seed int64) []string {
	tables := expt.All(seed)
	out := make([]string, len(tables))
	for i, t := range tables {
		out[i] = t.Render()
	}
	return out
}

// Explain renders a causal account of why property id holds or fails for
// the algebra — naming the rule, the component judgements (with
// counterexample witnesses), and a repair hint where the theory offers
// one. Property names: "M", "N", "C", "ND", "I", "SI", "T".
func Explain(a *Algebra, id string) string { return a.Explain(prop.ID(id)) }

// Simplify rewrites an expression with property-preserving identities
// (×lex flattening and unit elimination, left/right/addtop collapses).
func Simplify(e Expr) Expr { return core.Simplify(e) }

// Algorithm names a routing algorithm with a property-based license; see
// NewRouter.
type Algorithm = router.Algorithm

// The available algorithms.
const (
	// AlgoDijkstra requires M ∧ ND over a total preorder (global optima).
	AlgoDijkstra = router.Dijkstra
	// AlgoFixpoint requires M (path-dominating global optima).
	AlgoFixpoint = router.Fixpoint
	// AlgoPathVector requires I (guaranteed convergence to local optima).
	AlgoPathVector = router.PathVector
	// AlgoDistanceVector requires I plus a function-fixed ⊤.
	AlgoDistanceVector = router.DistanceVector
)

// Router is a licensed (algebra, algorithm) pairing — the paper's
// "routing protocol = language + algorithm + proof" as an API.
type Router = router.Router

// NewRouter pairs an algebra with an algorithm, failing with a causal
// explanation when the algebra's derived properties do not license it.
func NewRouter(a *Algebra, algo Algorithm) (*Router, error) { return router.New(a, algo) }

// LicensedAlgorithms lists the algorithms the algebra's properties allow.
func LicensedAlgorithms(a *Algebra) []Algorithm { return router.Licensed(a) }

// RIB is a multi-destination routing table with ECMP next-hop sets.
type RIB = rib.RIB

// BuildRIB computes routes from every node to every listed destination.
func BuildRIB(a *OrderTransform, g *Graph, origins map[int]V) (*RIB, error) {
	return rib.Build(a, g, origins)
}

// LoadScenario parses a scenario file (algebra + topology + link events).
func LoadScenario(rd io.Reader) (*scenario.Scenario, error) { return scenario.Parse(rd) }
